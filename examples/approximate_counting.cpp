// Approximate counting scenario (§V related work): trade accuracy for
// speed with DOULION edge sparsification and wedge sampling, and check the
// error against the exact forward count.

#include <iostream>

#include "cpu/approx.hpp"
#include "cpu/counting.hpp"
#include "gen/generators.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace trico;

  gen::RmatParams params;
  params.scale = 14;
  params.edge_factor = 16;
  const EdgeList graph = gen::rmat(params, 9);
  std::cout << "graph: " << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " edges\n\n";

  util::Timer exact_timer;
  const auto exact = static_cast<double>(cpu::count_forward(graph));
  const double exact_ms = exact_timer.elapsed_ms();
  std::cout << "exact (forward): " << static_cast<std::uint64_t>(exact)
            << " triangles in " << exact_ms << " ms\n\n";

  util::Table table({"method", "estimate", "error", "time [ms]", "speedup"});

  for (double p : {0.5, 0.25, 0.1}) {
    util::Timer timer;
    const cpu::ApproxResult r = cpu::count_doulion(graph, p, 7);
    const double ms = timer.elapsed_ms();
    std::ostringstream name, err;
    name << "doulion p=" << p;
    err.precision(2);
    err.setf(std::ios::fixed);
    err << 100.0 * (r.estimate - exact) / exact << "%";
    table.row()
        .cell(name.str())
        .cell(static_cast<std::uint64_t>(r.estimate))
        .cell(err.str())
        .cell(ms, 1)
        .cell(exact_ms / ms, 1);
  }

  for (std::uint64_t samples : {10000ull, 100000ull}) {
    util::Timer timer;
    const cpu::ApproxResult r = cpu::count_wedge_sampling(graph, samples, 7);
    const double ms = timer.elapsed_ms();
    std::ostringstream name, err;
    name << "wedges n=" << samples;
    err.precision(2);
    err.setf(std::ios::fixed);
    err << 100.0 * (r.estimate - exact) / exact << "%";
    table.row()
        .cell(name.str())
        .cell(static_cast<std::uint64_t>(r.estimate))
        .cell(err.str())
        .cell(ms, 1)
        .cell(exact_ms / ms, 1);
  }

  table.print(std::cout);
  std::cout << "\nAs the paper notes (SV), approximation buys large "
               "speedups at a few percent error — but only ever an "
               "approximate count.\n";
  return 0;
}
