// Community-core scenario: k-truss decomposition of a social-style graph.
//
// Triangle counting is the primitive; the k-truss — the maximal subgraph in
// which every edge participates in at least k-2 triangles — is a classic
// downstream application for finding cohesive cores in social networks.
// This example decomposes a generated social graph, prints the truss-size
// profile, and shows how the densest core shrinks and densifies as k grows.

#include <iostream>

#include "analysis/clustering.hpp"
#include "analysis/truss.hpp"
#include "cpu/counting.hpp"
#include "gen/generators.hpp"
#include "graph/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace trico;

  gen::SocialParams params;
  params.n = 20000;
  params.attach = 7;
  params.closure_rounds = 2.0;
  params.closure_prob = 0.5;
  const EdgeList graph = gen::social(params, 21);
  std::cout << "graph: " << compute_stats(graph) << "\n";
  std::cout << "triangles: " << cpu::count_forward(graph) << "\n\n";

  const analysis::TrussDecomposition decomposition =
      analysis::truss_decomposition(graph);
  std::cout << "max trussness: " << decomposition.max_trussness << "\n\n";

  util::Table table({"k", "edges in k-truss", "vertices touched",
                     "global clustering of k-truss"});
  for (std::uint32_t k = 2; k <= decomposition.max_trussness; ++k) {
    std::uint64_t edge_count = 0;
    for (std::uint32_t t : decomposition.trussness) {
      if (t >= k) ++edge_count;
    }
    if (edge_count == 0) break;
    const EdgeList truss = analysis::k_truss(graph, k);
    const GraphStats stats = compute_stats(truss);
    table.row()
        .cell(static_cast<int>(k))
        .cell(edge_count)
        .cell(static_cast<std::uint64_t>(stats.num_vertices -
                                         stats.isolated_vertices))
        .cell(analysis::global_clustering(truss), 3);
  }
  table.print(std::cout);

  std::cout << "\nHigher-k trusses are smaller and more clustered — the "
               "cohesive cores triadic closure builds.\n";
  return 0;
}
