// Network-analysis scenario: clustering coefficients and transitivity.
//
// The paper's motivation (§I): triangle counts underlie the clustering
// coefficient and the transitivity ratio used in network analysis. This
// example compares a small-world network (Watts-Strogatz) against a random
// graph with the same size, reproducing the classic observation that small
// worlds keep lattice-like clustering at random-graph path lengths, and
// prints the most locally-clustered vertices of a social-style graph.

#include <algorithm>
#include <iostream>
#include <numeric>

#include "analysis/clustering.hpp"
#include "cpu/counting.hpp"
#include "gen/generators.hpp"
#include "graph/stats.hpp"

int main() {
  using namespace trico;

  std::cout << "=== Clustering coefficients: small world vs random ===\n\n";
  const VertexId n = 20000;
  const EdgeList small_world = gen::watts_strogatz(n, 6, 0.05, 1);
  const EdgeList random_graph = gen::erdos_renyi(n, small_world.num_edges(), 1);

  for (const auto& [name, graph] :
       {std::pair<const char*, const EdgeList&>{"watts-strogatz(k=6, b=0.05)",
                                                small_world},
        {"erdos-renyi (same n, m)", random_graph}}) {
    const TriangleCount triangles = cpu::count_forward(graph);
    std::cout << name << ":\n"
              << "  " << compute_stats(graph) << "\n"
              << "  triangles            " << triangles << "\n"
              << "  global clustering    " << analysis::global_clustering(graph)
              << "\n"
              << "  transitivity ratio   " << analysis::transitivity(graph)
              << "\n\n";
  }

  std::cout << "A small world keeps ~10-100x the clustering of a random "
               "graph at equal density.\n\n";

  std::cout << "=== Most clustered hubs of a social-style graph ===\n\n";
  gen::SocialParams params;
  params.n = 10000;
  params.attach = 6;
  params.closure_rounds = 2.0;
  params.closure_prob = 0.5;
  const EdgeList social = gen::social(params, 7);
  const std::vector<double> local = analysis::local_clustering(social);
  const std::vector<TriangleCount> per_vertex =
      cpu::per_vertex_triangles(social);
  const std::vector<EdgeIndex> degree = social.degrees();

  // Top vertices by triangle participation.
  std::vector<VertexId> order(social.num_vertices());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](VertexId a, VertexId b) {
                      return per_vertex[a] > per_vertex[b];
                    });
  std::cout << "vertex  degree  triangles  local-clustering\n";
  for (int i = 0; i < 5; ++i) {
    const VertexId v = order[i];
    std::cout << v << "  " << degree[v] << "  " << per_vertex[v] << "  "
              << local[v] << "\n";
  }
  return 0;
}
