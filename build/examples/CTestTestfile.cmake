# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_clustering_coefficient]=] "/root/repo/build/examples/clustering_coefficient")
set_tests_properties([=[example_clustering_coefficient]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_multi_gpu_scaling]=] "/root/repo/build/examples/multi_gpu_scaling")
set_tests_properties([=[example_multi_gpu_scaling]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_format_conversion]=] "/root/repo/build/examples/format_conversion")
set_tests_properties([=[example_format_conversion]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_approximate_counting]=] "/root/repo/build/examples/approximate_counting")
set_tests_properties([=[example_approximate_counting]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_truss_decomposition]=] "/root/repo/build/examples/truss_decomposition")
set_tests_properties([=[example_truss_decomposition]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_trico_cli]=] "/root/repo/build/examples/trico_cli" "--rmat" "9" "--algorithm" "gpu" "--clustering" "--stats")
set_tests_properties([=[example_trico_cli]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
