# Empty dependencies file for format_conversion.
# This may be replaced when dependencies are built.
