file(REMOVE_RECURSE
  "CMakeFiles/format_conversion.dir/format_conversion.cpp.o"
  "CMakeFiles/format_conversion.dir/format_conversion.cpp.o.d"
  "format_conversion"
  "format_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
