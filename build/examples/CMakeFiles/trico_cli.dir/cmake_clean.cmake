file(REMOVE_RECURSE
  "CMakeFiles/trico_cli.dir/trico_cli.cpp.o"
  "CMakeFiles/trico_cli.dir/trico_cli.cpp.o.d"
  "trico_cli"
  "trico_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trico_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
