# Empty dependencies file for trico_cli.
# This may be replaced when dependencies are built.
