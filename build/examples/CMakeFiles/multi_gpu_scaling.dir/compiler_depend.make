# Empty compiler generated dependencies file for multi_gpu_scaling.
# This may be replaced when dependencies are built.
