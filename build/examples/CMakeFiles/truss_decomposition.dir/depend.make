# Empty dependencies file for truss_decomposition.
# This may be replaced when dependencies are built.
