file(REMOVE_RECURSE
  "CMakeFiles/truss_decomposition.dir/truss_decomposition.cpp.o"
  "CMakeFiles/truss_decomposition.dir/truss_decomposition.cpp.o.d"
  "truss_decomposition"
  "truss_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truss_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
