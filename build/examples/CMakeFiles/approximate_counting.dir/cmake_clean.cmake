file(REMOVE_RECURSE
  "CMakeFiles/approximate_counting.dir/approximate_counting.cpp.o"
  "CMakeFiles/approximate_counting.dir/approximate_counting.cpp.o.d"
  "approximate_counting"
  "approximate_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximate_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
