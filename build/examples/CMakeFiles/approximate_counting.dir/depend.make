# Empty dependencies file for approximate_counting.
# This may be replaced when dependencies are built.
