# Empty dependencies file for clustering_coefficient.
# This may be replaced when dependencies are built.
