file(REMOVE_RECURSE
  "CMakeFiles/clustering_coefficient.dir/clustering_coefficient.cpp.o"
  "CMakeFiles/clustering_coefficient.dir/clustering_coefficient.cpp.o.d"
  "clustering_coefficient"
  "clustering_coefficient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_coefficient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
