# Empty compiler generated dependencies file for cpu_test.
# This may be replaced when dependencies are built.
