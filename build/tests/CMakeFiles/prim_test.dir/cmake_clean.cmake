file(REMOVE_RECURSE
  "CMakeFiles/prim_test.dir/prim_test.cpp.o"
  "CMakeFiles/prim_test.dir/prim_test.cpp.o.d"
  "prim_test"
  "prim_test.pdb"
  "prim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
