# Empty compiler generated dependencies file for prim_test.
# This may be replaced when dependencies are built.
