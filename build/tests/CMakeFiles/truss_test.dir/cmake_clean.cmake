file(REMOVE_RECURSE
  "CMakeFiles/truss_test.dir/truss_test.cpp.o"
  "CMakeFiles/truss_test.dir/truss_test.cpp.o.d"
  "truss_test"
  "truss_test.pdb"
  "truss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
