# Empty dependencies file for truss_test.
# This may be replaced when dependencies are built.
