file(REMOVE_RECURSE
  "CMakeFiles/approx_test.dir/approx_test.cpp.o"
  "CMakeFiles/approx_test.dir/approx_test.cpp.o.d"
  "approx_test"
  "approx_test.pdb"
  "approx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
