file(REMOVE_RECURSE
  "CMakeFiles/timing_model_test.dir/timing_model_test.cpp.o"
  "CMakeFiles/timing_model_test.dir/timing_model_test.cpp.o.d"
  "timing_model_test"
  "timing_model_test.pdb"
  "timing_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
