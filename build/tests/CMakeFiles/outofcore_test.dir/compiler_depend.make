# Empty compiler generated dependencies file for outofcore_test.
# This may be replaced when dependencies are built.
