file(REMOVE_RECURSE
  "CMakeFiles/outofcore_test.dir/outofcore_test.cpp.o"
  "CMakeFiles/outofcore_test.dir/outofcore_test.cpp.o.d"
  "outofcore_test"
  "outofcore_test.pdb"
  "outofcore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outofcore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
