# Empty dependencies file for simt_test.
# This may be replaced when dependencies are built.
