file(REMOVE_RECURSE
  "CMakeFiles/simt_test.dir/simt_test.cpp.o"
  "CMakeFiles/simt_test.dir/simt_test.cpp.o.d"
  "simt_test"
  "simt_test.pdb"
  "simt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
