# Empty dependencies file for multigpu_test.
# This may be replaced when dependencies are built.
