file(REMOVE_RECURSE
  "CMakeFiles/multigpu_test.dir/multigpu_test.cpp.o"
  "CMakeFiles/multigpu_test.dir/multigpu_test.cpp.o.d"
  "multigpu_test"
  "multigpu_test.pdb"
  "multigpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multigpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
