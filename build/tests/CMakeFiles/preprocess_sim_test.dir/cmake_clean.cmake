file(REMOVE_RECURSE
  "CMakeFiles/preprocess_sim_test.dir/preprocess_sim_test.cpp.o"
  "CMakeFiles/preprocess_sim_test.dir/preprocess_sim_test.cpp.o.d"
  "preprocess_sim_test"
  "preprocess_sim_test.pdb"
  "preprocess_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preprocess_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
