# Empty compiler generated dependencies file for preprocess_sim_test.
# This may be replaced when dependencies are built.
