# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/prim_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/simt_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/multigpu_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/approx_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/outofcore_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/preprocess_sim_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/truss_test[1]_include.cmake")
include("/root/repo/build/tests/mapreduce_test[1]_include.cmake")
include("/root/repo/build/tests/timing_model_test[1]_include.cmake")
