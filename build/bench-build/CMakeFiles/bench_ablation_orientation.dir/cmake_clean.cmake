file(REMOVE_RECURSE
  "../bench/bench_ablation_orientation"
  "../bench/bench_ablation_orientation.pdb"
  "CMakeFiles/bench_ablation_orientation.dir/bench_ablation_orientation.cpp.o"
  "CMakeFiles/bench_ablation_orientation.dir/bench_ablation_orientation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_orientation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
