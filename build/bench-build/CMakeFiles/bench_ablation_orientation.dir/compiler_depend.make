# Empty compiler generated dependencies file for bench_ablation_orientation.
# This may be replaced when dependencies are built.
