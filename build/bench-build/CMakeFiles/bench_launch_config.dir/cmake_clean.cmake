file(REMOVE_RECURSE
  "../bench/bench_launch_config"
  "../bench/bench_launch_config.pdb"
  "CMakeFiles/bench_launch_config.dir/bench_launch_config.cpp.o"
  "CMakeFiles/bench_launch_config.dir/bench_launch_config.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_launch_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
