# Empty compiler generated dependencies file for bench_launch_config.
# This may be replaced when dependencies are built.
