# Empty dependencies file for bench_ablation_texcache.
# This may be replaced when dependencies are built.
