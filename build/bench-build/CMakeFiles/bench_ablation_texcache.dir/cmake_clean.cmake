file(REMOVE_RECURSE
  "../bench/bench_ablation_texcache"
  "../bench/bench_ablation_texcache.pdb"
  "CMakeFiles/bench_ablation_texcache.dir/bench_ablation_texcache.cpp.o"
  "CMakeFiles/bench_ablation_texcache.dir/bench_ablation_texcache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_texcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
