# Empty compiler generated dependencies file for bench_kernel_comparison.
# This may be replaced when dependencies are built.
