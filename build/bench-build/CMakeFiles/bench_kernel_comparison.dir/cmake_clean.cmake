file(REMOVE_RECURSE
  "../bench/bench_kernel_comparison"
  "../bench/bench_kernel_comparison.pdb"
  "CMakeFiles/bench_kernel_comparison.dir/bench_kernel_comparison.cpp.o"
  "CMakeFiles/bench_kernel_comparison.dir/bench_kernel_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
