# Empty compiler generated dependencies file for bench_ablation_unzip.
# This may be replaced when dependencies are built.
