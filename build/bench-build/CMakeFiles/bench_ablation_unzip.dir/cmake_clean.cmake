file(REMOVE_RECURSE
  "../bench/bench_ablation_unzip"
  "../bench/bench_ablation_unzip.pdb"
  "CMakeFiles/bench_ablation_unzip.dir/bench_ablation_unzip.cpp.o"
  "CMakeFiles/bench_ablation_unzip.dir/bench_ablation_unzip.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_unzip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
