file(REMOVE_RECURSE
  "../lib/libtrico_bench_suite.a"
)
