file(REMOVE_RECURSE
  "../lib/libtrico_bench_suite.a"
  "../lib/libtrico_bench_suite.pdb"
  "CMakeFiles/trico_bench_suite.dir/suite.cpp.o"
  "CMakeFiles/trico_bench_suite.dir/suite.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trico_bench_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
