# Empty compiler generated dependencies file for trico_bench_suite.
# This may be replaced when dependencies are built.
