# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for trico_bench_suite.
