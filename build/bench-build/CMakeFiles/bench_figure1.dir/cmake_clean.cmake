file(REMOVE_RECURSE
  "../bench/bench_figure1"
  "../bench/bench_figure1.pdb"
  "CMakeFiles/bench_figure1.dir/bench_figure1.cpp.o"
  "CMakeFiles/bench_figure1.dir/bench_figure1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
