# Empty dependencies file for bench_ablation_cpu_preproc.
# This may be replaced when dependencies are built.
