file(REMOVE_RECURSE
  "../bench/bench_ablation_cpu_preproc"
  "../bench/bench_ablation_cpu_preproc.pdb"
  "CMakeFiles/bench_ablation_cpu_preproc.dir/bench_ablation_cpu_preproc.cpp.o"
  "CMakeFiles/bench_ablation_cpu_preproc.dir/bench_ablation_cpu_preproc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cpu_preproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
