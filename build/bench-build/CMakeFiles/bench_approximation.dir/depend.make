# Empty dependencies file for bench_approximation.
# This may be replaced when dependencies are built.
