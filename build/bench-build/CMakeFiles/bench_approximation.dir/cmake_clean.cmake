file(REMOVE_RECURSE
  "../bench/bench_approximation"
  "../bench/bench_approximation.pdb"
  "CMakeFiles/bench_approximation.dir/bench_approximation.cpp.o"
  "CMakeFiles/bench_approximation.dir/bench_approximation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_approximation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
