# Empty compiler generated dependencies file for bench_ablation_sort64.
# This may be replaced when dependencies are built.
