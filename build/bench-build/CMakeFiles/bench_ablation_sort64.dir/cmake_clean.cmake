file(REMOVE_RECURSE
  "../bench/bench_ablation_sort64"
  "../bench/bench_ablation_sort64.pdb"
  "CMakeFiles/bench_ablation_sort64.dir/bench_ablation_sort64.cpp.o"
  "CMakeFiles/bench_ablation_sort64.dir/bench_ablation_sort64.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sort64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
