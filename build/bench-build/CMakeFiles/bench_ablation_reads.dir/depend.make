# Empty dependencies file for bench_ablation_reads.
# This may be replaced when dependencies are built.
