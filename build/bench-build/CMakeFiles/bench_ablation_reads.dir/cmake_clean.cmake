file(REMOVE_RECURSE
  "../bench/bench_ablation_reads"
  "../bench/bench_ablation_reads.pdb"
  "CMakeFiles/bench_ablation_reads.dir/bench_ablation_reads.cpp.o"
  "CMakeFiles/bench_ablation_reads.dir/bench_ablation_reads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
