file(REMOVE_RECURSE
  "../bench/bench_ablation_warpsize"
  "../bench/bench_ablation_warpsize.pdb"
  "CMakeFiles/bench_ablation_warpsize.dir/bench_ablation_warpsize.cpp.o"
  "CMakeFiles/bench_ablation_warpsize.dir/bench_ablation_warpsize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_warpsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
