# Empty dependencies file for bench_ablation_warpsize.
# This may be replaced when dependencies are built.
