# Empty compiler generated dependencies file for bench_input_format.
# This may be replaced when dependencies are built.
