file(REMOVE_RECURSE
  "../bench/bench_input_format"
  "../bench/bench_input_format.pdb"
  "CMakeFiles/bench_input_format.dir/bench_input_format.cpp.o"
  "CMakeFiles/bench_input_format.dir/bench_input_format.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_input_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
