file(REMOVE_RECURSE
  "../bench/bench_multigpu"
  "../bench/bench_multigpu.pdb"
  "CMakeFiles/bench_multigpu.dir/bench_multigpu.cpp.o"
  "CMakeFiles/bench_multigpu.dir/bench_multigpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
