# Empty dependencies file for bench_multigpu.
# This may be replaced when dependencies are built.
