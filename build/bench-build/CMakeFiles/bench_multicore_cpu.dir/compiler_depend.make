# Empty compiler generated dependencies file for bench_multicore_cpu.
# This may be replaced when dependencies are built.
