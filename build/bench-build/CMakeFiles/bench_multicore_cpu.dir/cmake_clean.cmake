file(REMOVE_RECURSE
  "../bench/bench_multicore_cpu"
  "../bench/bench_multicore_cpu.pdb"
  "CMakeFiles/bench_multicore_cpu.dir/bench_multicore_cpu.cpp.o"
  "CMakeFiles/bench_multicore_cpu.dir/bench_multicore_cpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multicore_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
