file(REMOVE_RECURSE
  "../bench/bench_outofcore"
  "../bench/bench_outofcore.pdb"
  "CMakeFiles/bench_outofcore.dir/bench_outofcore.cpp.o"
  "CMakeFiles/bench_outofcore.dir/bench_outofcore.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_outofcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
