# Empty dependencies file for bench_outofcore.
# This may be replaced when dependencies are built.
