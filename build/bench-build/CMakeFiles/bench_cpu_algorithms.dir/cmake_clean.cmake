file(REMOVE_RECURSE
  "../bench/bench_cpu_algorithms"
  "../bench/bench_cpu_algorithms.pdb"
  "CMakeFiles/bench_cpu_algorithms.dir/bench_cpu_algorithms.cpp.o"
  "CMakeFiles/bench_cpu_algorithms.dir/bench_cpu_algorithms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
