# Empty dependencies file for bench_cpu_algorithms.
# This may be replaced when dependencies are built.
