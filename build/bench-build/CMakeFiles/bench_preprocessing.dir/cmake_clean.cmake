file(REMOVE_RECURSE
  "../bench/bench_preprocessing"
  "../bench/bench_preprocessing.pdb"
  "CMakeFiles/bench_preprocessing.dir/bench_preprocessing.cpp.o"
  "CMakeFiles/bench_preprocessing.dir/bench_preprocessing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
