file(REMOVE_RECURSE
  "../bench/bench_mapreduce"
  "../bench/bench_mapreduce.pdb"
  "CMakeFiles/bench_mapreduce.dir/bench_mapreduce.cpp.o"
  "CMakeFiles/bench_mapreduce.dir/bench_mapreduce.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
