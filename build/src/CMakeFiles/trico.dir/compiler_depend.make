# Empty compiler generated dependencies file for trico.
# This may be replaced when dependencies are built.
