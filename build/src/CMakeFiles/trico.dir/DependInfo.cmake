
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/clustering.cpp" "src/CMakeFiles/trico.dir/analysis/clustering.cpp.o" "gcc" "src/CMakeFiles/trico.dir/analysis/clustering.cpp.o.d"
  "/root/repo/src/analysis/truss.cpp" "src/CMakeFiles/trico.dir/analysis/truss.cpp.o" "gcc" "src/CMakeFiles/trico.dir/analysis/truss.cpp.o.d"
  "/root/repo/src/core/gpu_clustering.cpp" "src/CMakeFiles/trico.dir/core/gpu_clustering.cpp.o" "gcc" "src/CMakeFiles/trico.dir/core/gpu_clustering.cpp.o.d"
  "/root/repo/src/core/gpu_forward.cpp" "src/CMakeFiles/trico.dir/core/gpu_forward.cpp.o" "gcc" "src/CMakeFiles/trico.dir/core/gpu_forward.cpp.o.d"
  "/root/repo/src/core/preprocess.cpp" "src/CMakeFiles/trico.dir/core/preprocess.cpp.o" "gcc" "src/CMakeFiles/trico.dir/core/preprocess.cpp.o.d"
  "/root/repo/src/core/preprocess_sim.cpp" "src/CMakeFiles/trico.dir/core/preprocess_sim.cpp.o" "gcc" "src/CMakeFiles/trico.dir/core/preprocess_sim.cpp.o.d"
  "/root/repo/src/cpu/approx.cpp" "src/CMakeFiles/trico.dir/cpu/approx.cpp.o" "gcc" "src/CMakeFiles/trico.dir/cpu/approx.cpp.o.d"
  "/root/repo/src/cpu/forward.cpp" "src/CMakeFiles/trico.dir/cpu/forward.cpp.o" "gcc" "src/CMakeFiles/trico.dir/cpu/forward.cpp.o.d"
  "/root/repo/src/cpu/hybrid.cpp" "src/CMakeFiles/trico.dir/cpu/hybrid.cpp.o" "gcc" "src/CMakeFiles/trico.dir/cpu/hybrid.cpp.o.d"
  "/root/repo/src/cpu/iterators.cpp" "src/CMakeFiles/trico.dir/cpu/iterators.cpp.o" "gcc" "src/CMakeFiles/trico.dir/cpu/iterators.cpp.o.d"
  "/root/repo/src/cpu/listing.cpp" "src/CMakeFiles/trico.dir/cpu/listing.cpp.o" "gcc" "src/CMakeFiles/trico.dir/cpu/listing.cpp.o.d"
  "/root/repo/src/gen/generators.cpp" "src/CMakeFiles/trico.dir/gen/generators.cpp.o" "gcc" "src/CMakeFiles/trico.dir/gen/generators.cpp.o.d"
  "/root/repo/src/gen/reference.cpp" "src/CMakeFiles/trico.dir/gen/reference.cpp.o" "gcc" "src/CMakeFiles/trico.dir/gen/reference.cpp.o.d"
  "/root/repo/src/graph/conversion.cpp" "src/CMakeFiles/trico.dir/graph/conversion.cpp.o" "gcc" "src/CMakeFiles/trico.dir/graph/conversion.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/CMakeFiles/trico.dir/graph/csr.cpp.o" "gcc" "src/CMakeFiles/trico.dir/graph/csr.cpp.o.d"
  "/root/repo/src/graph/edge_list.cpp" "src/CMakeFiles/trico.dir/graph/edge_list.cpp.o" "gcc" "src/CMakeFiles/trico.dir/graph/edge_list.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/trico.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/trico.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/orientation.cpp" "src/CMakeFiles/trico.dir/graph/orientation.cpp.o" "gcc" "src/CMakeFiles/trico.dir/graph/orientation.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/CMakeFiles/trico.dir/graph/stats.cpp.o" "gcc" "src/CMakeFiles/trico.dir/graph/stats.cpp.o.d"
  "/root/repo/src/mapreduce/triangles.cpp" "src/CMakeFiles/trico.dir/mapreduce/triangles.cpp.o" "gcc" "src/CMakeFiles/trico.dir/mapreduce/triangles.cpp.o.d"
  "/root/repo/src/multigpu/multi_gpu.cpp" "src/CMakeFiles/trico.dir/multigpu/multi_gpu.cpp.o" "gcc" "src/CMakeFiles/trico.dir/multigpu/multi_gpu.cpp.o.d"
  "/root/repo/src/outofcore/counter.cpp" "src/CMakeFiles/trico.dir/outofcore/counter.cpp.o" "gcc" "src/CMakeFiles/trico.dir/outofcore/counter.cpp.o.d"
  "/root/repo/src/outofcore/partition.cpp" "src/CMakeFiles/trico.dir/outofcore/partition.cpp.o" "gcc" "src/CMakeFiles/trico.dir/outofcore/partition.cpp.o.d"
  "/root/repo/src/prim/histogram.cpp" "src/CMakeFiles/trico.dir/prim/histogram.cpp.o" "gcc" "src/CMakeFiles/trico.dir/prim/histogram.cpp.o.d"
  "/root/repo/src/prim/radix_sort.cpp" "src/CMakeFiles/trico.dir/prim/radix_sort.cpp.o" "gcc" "src/CMakeFiles/trico.dir/prim/radix_sort.cpp.o.d"
  "/root/repo/src/prim/thread_pool.cpp" "src/CMakeFiles/trico.dir/prim/thread_pool.cpp.o" "gcc" "src/CMakeFiles/trico.dir/prim/thread_pool.cpp.o.d"
  "/root/repo/src/simt/cache.cpp" "src/CMakeFiles/trico.dir/simt/cache.cpp.o" "gcc" "src/CMakeFiles/trico.dir/simt/cache.cpp.o.d"
  "/root/repo/src/simt/device_config.cpp" "src/CMakeFiles/trico.dir/simt/device_config.cpp.o" "gcc" "src/CMakeFiles/trico.dir/simt/device_config.cpp.o.d"
  "/root/repo/src/simt/memory_system.cpp" "src/CMakeFiles/trico.dir/simt/memory_system.cpp.o" "gcc" "src/CMakeFiles/trico.dir/simt/memory_system.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/trico.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/trico.dir/util/table.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/trico.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/trico.dir/util/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
