file(REMOVE_RECURSE
  "libtrico.a"
)
