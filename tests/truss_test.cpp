// Tests for edge support, k-truss decomposition, and the degree-resolved
// clustering profile.

#include <gtest/gtest.h>

#include <numeric>

#include "analysis/clustering.hpp"
#include "analysis/truss.hpp"
#include "cpu/counting.hpp"
#include "gen/generators.hpp"
#include "gen/reference.hpp"

namespace trico::analysis {
namespace {

TEST(EdgeSupportTest, SupportsSumToThreeTimesTriangles) {
  const EdgeList g = gen::erdos_renyi(200, 2000, 3);
  const EdgeSupport support = edge_support(g);
  const std::uint64_t sum =
      std::accumulate(support.support.begin(), support.support.end(),
                      std::uint64_t{0});
  EXPECT_EQ(sum, 3 * cpu::count_forward(g));
}

TEST(EdgeSupportTest, CompleteGraphSupports) {
  // In K_n every edge closes with the other n-2 vertices.
  const gen::ReferenceGraph g = gen::complete(7);
  const EdgeSupport support = edge_support(g.edges);
  for (std::uint32_t s : support.support) EXPECT_EQ(s, 5u);
}

TEST(EdgeSupportTest, TriangleFreeGraphHasZeroSupport) {
  const gen::ReferenceGraph g = gen::grid(6, 6);
  const EdgeSupport support = edge_support(g.edges);
  for (std::uint32_t s : support.support) EXPECT_EQ(s, 0u);
}

TEST(TrussTest, CompleteGraphIsAnNTruss) {
  // K_n is an n-truss: every edge has support n-2 = k-2.
  for (VertexId n : {4u, 5u, 8u}) {
    const gen::ReferenceGraph g = gen::complete(n);
    const TrussDecomposition d = truss_decomposition(g.edges);
    EXPECT_EQ(d.max_trussness, n);
    for (std::uint32_t t : d.trussness) EXPECT_EQ(t, n);
  }
}

TEST(TrussTest, TreeEdgesHaveTrussnessTwo) {
  const gen::ReferenceGraph g = gen::star(12);
  const TrussDecomposition d = truss_decomposition(g.edges);
  for (std::uint32_t t : d.trussness) EXPECT_EQ(t, 2u);
  EXPECT_EQ(d.max_trussness, 2u);
}

TEST(TrussTest, TriangleWithPendantEdge) {
  // Triangle {0,1,2} + pendant (0,3): triangle edges are a 3-truss, the
  // pendant a 2-truss.
  const EdgeList g = EdgeList::from_undirected_pairs(
      std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  const TrussDecomposition d = truss_decomposition(g);
  for (std::size_t i = 0; i < d.pairs.size(); ++i) {
    const bool pendant = d.pairs[i].v == 3;
    EXPECT_EQ(d.trussness[i], pendant ? 2u : 3u);
  }
}

TEST(TrussTest, CliqueRingPeelsToTheCliques) {
  // Bridges between cliques carry no triangles (trussness 2); clique edges
  // have trussness k.
  const gen::ReferenceGraph g = gen::clique_ring(5, 4);
  const TrussDecomposition d = truss_decomposition(g.edges);
  EXPECT_EQ(d.max_trussness, 5u);
  std::uint64_t bridges = 0;
  for (std::uint32_t t : d.trussness) {
    if (t == 2) ++bridges;
  }
  EXPECT_EQ(bridges, 4u);
}

TEST(TrussTest, KTrussSubgraphIsConsistent) {
  const EdgeList g = gen::barabasi_albert(300, 6, 4);
  const TrussDecomposition d = truss_decomposition(g);
  for (std::uint32_t k = 2; k <= d.max_trussness; ++k) {
    const EdgeList truss = k_truss(g, k);
    // The k-truss definition: inside it, every edge closes >= k-2 triangles.
    const EdgeSupport inner = edge_support(truss);
    for (std::size_t i = 0; i < inner.support.size(); ++i) {
      EXPECT_GE(inner.support[i] + 2, k)
          << "edge (" << inner.pairs[i].u << "," << inner.pairs[i].v
          << ") violates the " << k << "-truss";
    }
  }
}

TEST(TrussTest, TrussnessIsMaximal) {
  // Spot check: each edge's trussness t means it is NOT in the (t+1)-truss.
  const EdgeList g = gen::watts_strogatz(200, 4, 0.1, 6);
  const TrussDecomposition d = truss_decomposition(g);
  for (std::uint32_t k = 2; k <= d.max_trussness + 1; ++k) {
    const EdgeList truss = k_truss(g, k);
    std::uint64_t expected = 0;
    for (std::uint32_t t : d.trussness) {
      if (t >= k) ++expected;
    }
    EXPECT_EQ(truss.num_edges(), expected) << "k = " << k;
  }
}

TEST(ClusteringProfileTest, CompleteGraphProfile) {
  const gen::ReferenceGraph g = gen::complete(6);
  const auto profile = clustering_by_degree(g.edges);
  ASSERT_EQ(profile.size(), 6u);  // max degree 5
  EXPECT_DOUBLE_EQ(profile[5], 1.0);
  EXPECT_DOUBLE_EQ(profile[0], 0.0);  // no vertices of other degrees
}

TEST(ClusteringProfileTest, ProfileAveragesMatchGlobal) {
  const EdgeList g = gen::watts_strogatz(500, 4, 0.1, 8);
  const auto profile = clustering_by_degree(g);
  const auto degree = g.degrees();
  std::vector<std::uint64_t> count(profile.size(), 0);
  for (EdgeIndex d : degree) ++count[d];
  double weighted = 0.0;
  std::uint64_t eligible = 0;
  for (std::size_t d = 2; d < profile.size(); ++d) {
    weighted += profile[d] * static_cast<double>(count[d]);
    eligible += count[d];
  }
  EXPECT_NEAR(weighted / static_cast<double>(eligible),
              global_clustering(g), 1e-9);
}

}  // namespace
}  // namespace trico::analysis
