// Tests for the timing/table utilities used by the benchmark harness, and
// for the EINTR-safe io helpers the wire transport and .trico loader share.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/io.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace trico::util {
namespace {

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(timer.elapsed_ms(), 9.0);
}

TEST(TimerTest, ResetRestarts) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.reset();
  EXPECT_LT(timer.elapsed_ms(), 5.0);
}

TEST(RepeatTimedTest, RunsBodyExactlyNTimes) {
  int calls = 0;
  const TimingResult result = repeat_timed(5, [&] { ++calls; });
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(result.runs, 5u);
  EXPECT_GE(result.max_ms, result.min_ms);
  EXPECT_GE(result.mean_ms, 0.0);
}

TEST(RepeatTimedTest, ZeroRunsIsSafe) {
  const TimingResult result = repeat_timed(0, [] {});
  EXPECT_EQ(result.mean_ms, 0.0);
  EXPECT_EQ(result.min_ms, 0.0);
}

TEST(TableTest, AlignsColumnsAndSections) {
  Table table({"Graph", "Time"});
  table.section("Synthetic");
  table.row().cell("kron").cell(123.456, 1);
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Graph"), std::string::npos);
  EXPECT_NE(text.find("-- Synthetic --"), std::string::npos);
  EXPECT_NE(text.find("123.5"), std::string::npos);
}

TEST(TableTest, NumericCellTypes) {
  Table table({"a", "b", "c", "d"});
  table.row()
      .cell(std::uint64_t{18000000000ull})
      .cell(std::int64_t{-5})
      .cell(7)
      .cell(0.5, 3);
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("18000000000"), std::string::npos);
  EXPECT_NE(out.str().find("0.500"), std::string::npos);
}

TEST(HumanCountTest, ScalesUnits) {
  EXPECT_EQ(human_count(950), "950");
  EXPECT_EQ(human_count(29'000'000), "29.0M");
  EXPECT_EQ(human_count(8'816'000'000ull), "8.8G");
  EXPECT_EQ(human_count(1'500), "1.5K");
}

// ---------------------------------------------------------------------------
// EINTR-safe io helpers

TEST(IoTest, ReadFullLoopsShortReadsToCompletion) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string message = "exactly-thirty-one-bytes-here!!";
  ASSERT_EQ(message.size(), 31u);

  // Writer dribbles the bytes so the reader must loop short reads.
  std::thread writer([&] {
    for (char c : message) {
      ASSERT_EQ(io::write_full(fds[1], &c, 1).status, io::IoStatus::kOk);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    io::close_quiet(fds[1]);
  });

  char buffer[31];
  const io::IoResult r = io::read_full(fds[0], buffer, sizeof(buffer));
  EXPECT_EQ(r.status, io::IoStatus::kOk);
  EXPECT_EQ(r.bytes, sizeof(buffer));
  EXPECT_EQ(std::string(buffer, sizeof(buffer)), message);
  writer.join();
  io::close_quiet(fds[0]);
}

TEST(IoTest, ReadFullReportsCleanEofWithPartialCount) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(io::write_full(fds[1], "abc", 3).status, io::IoStatus::kOk);
  io::close_quiet(fds[1]);

  char buffer[8];
  const io::IoResult r = io::read_full(fds[0], buffer, sizeof(buffer));
  EXPECT_EQ(r.status, io::IoStatus::kEof);
  EXPECT_EQ(r.bytes, 3u) << "torn-frame detection needs the partial count";
  io::close_quiet(fds[0]);
}

TEST(IoTest, WriteFullReportsErrorOnClosedPeer) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  io::close_quiet(fds[0]);
  // SIGPIPE must not kill the test; write_full reports EPIPE instead.
  ::signal(SIGPIPE, SIG_IGN);
  const std::vector<char> big(1 << 20, 'x');
  const io::IoResult r = io::write_full(fds[1], big.data(), big.size());
  EXPECT_EQ(r.status, io::IoStatus::kError);
  EXPECT_EQ(r.error, EPIPE);
  io::close_quiet(fds[1]);
}

TEST(IoTest, ReadAndWriteSurviveSignalStorm) {
  // A stream of harmless signals interrupts the transfer; the EINTR
  // retries must make the full payload arrive bit-exact regardless.
  ::signal(SIGUSR1, [](int) {});
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  std::vector<std::uint8_t> payload(4 << 20);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
  }

  std::atomic<bool> done{false};
  const pthread_t reader_thread = ::pthread_self();
  std::thread pester([&] {
    while (!done.load(std::memory_order_relaxed)) {
      ::pthread_kill(reader_thread, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  std::thread writer([&] {
    EXPECT_EQ(io::write_full(fds[1], payload.data(), payload.size()).status,
              io::IoStatus::kOk);
    io::close_quiet(fds[1]);
  });

  std::vector<std::uint8_t> received(payload.size());
  const io::IoResult r =
      io::read_full(fds[0], received.data(), received.size());
  done.store(true, std::memory_order_relaxed);
  pester.join();
  writer.join();
  EXPECT_EQ(r.status, io::IoStatus::kOk);
  EXPECT_EQ(received, payload) << "signal storm corrupted the transfer";
  io::close_quiet(fds[0]);
  ::signal(SIGUSR1, SIG_DFL);
}

TEST(IoTest, OpenRetryAndCloseQuiet) {
  EXPECT_LT(io::open_retry("/definitely/not/a/file", O_RDONLY), 0);
  const int fd = io::open_retry("/dev/null", O_RDONLY);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(io::close_quiet(fd), 0);
}

TEST(IoTest, PollRetryTimesOut) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  pollfd pfd{fds[0], POLLIN, 0};
  EXPECT_EQ(io::poll_retry(&pfd, 1, 20), 0);  // nothing to read: timeout
  ASSERT_EQ(io::write_full(fds[1], "x", 1).status, io::IoStatus::kOk);
  EXPECT_GT(io::poll_retry(&pfd, 1, 1000), 0);  // readable now
  io::close_quiet(fds[0]);
  io::close_quiet(fds[1]);
}

}  // namespace
}  // namespace trico::util
