// Tests for the timing/table utilities used by the benchmark harness.

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "util/table.hpp"
#include "util/timer.hpp"

namespace trico::util {
namespace {

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(timer.elapsed_ms(), 9.0);
}

TEST(TimerTest, ResetRestarts) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.reset();
  EXPECT_LT(timer.elapsed_ms(), 5.0);
}

TEST(RepeatTimedTest, RunsBodyExactlyNTimes) {
  int calls = 0;
  const TimingResult result = repeat_timed(5, [&] { ++calls; });
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(result.runs, 5u);
  EXPECT_GE(result.max_ms, result.min_ms);
  EXPECT_GE(result.mean_ms, 0.0);
}

TEST(RepeatTimedTest, ZeroRunsIsSafe) {
  const TimingResult result = repeat_timed(0, [] {});
  EXPECT_EQ(result.mean_ms, 0.0);
  EXPECT_EQ(result.min_ms, 0.0);
}

TEST(TableTest, AlignsColumnsAndSections) {
  Table table({"Graph", "Time"});
  table.section("Synthetic");
  table.row().cell("kron").cell(123.456, 1);
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Graph"), std::string::npos);
  EXPECT_NE(text.find("-- Synthetic --"), std::string::npos);
  EXPECT_NE(text.find("123.5"), std::string::npos);
}

TEST(TableTest, NumericCellTypes) {
  Table table({"a", "b", "c", "d"});
  table.row()
      .cell(std::uint64_t{18000000000ull})
      .cell(std::int64_t{-5})
      .cell(7)
      .cell(0.5, 3);
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("18000000000"), std::string::npos);
  EXPECT_NE(out.str().find("0.500"), std::string::npos);
}

TEST(HumanCountTest, ScalesUnits) {
  EXPECT_EQ(human_count(950), "950");
  EXPECT_EQ(human_count(29'000'000), "29.0M");
  EXPECT_EQ(human_count(8'816'000'000ull), "8.8G");
  EXPECT_EQ(human_count(1'500), "1.5K");
}

}  // namespace
}  // namespace trico::util
