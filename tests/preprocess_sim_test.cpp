// Tests for the fully-simulated preprocessing path: it must produce
// bit-identical arrays to the host/analytic path, and its per-kernel
// statistics must be sane.

#include <gtest/gtest.h>

#include "core/preprocess.hpp"
#include "core/preprocess_sim.hpp"
#include "cpu/counting.hpp"
#include "gen/generators.hpp"
#include "gen/reference.hpp"

namespace trico::core {
namespace {

simt::DeviceConfig small_device() {
  simt::DeviceConfig config = simt::DeviceConfig::gtx_980();
  config.num_sms = 4;
  return config;
}

void expect_same_graph(const PreprocessedGraph& a, const PreprocessedGraph& b) {
  EXPECT_EQ(a.num_vertices, b.num_vertices);
  ASSERT_EQ(a.oriented.size(), b.oriented.size());
  EXPECT_TRUE(std::equal(a.oriented.begin(), a.oriented.end(),
                         b.oriented.begin()));
  EXPECT_EQ(a.node, b.node);
  EXPECT_EQ(a.soa.src, b.soa.src);
  EXPECT_EQ(a.soa.dst, b.soa.dst);
}

TEST(PreprocessSimTest, MatchesHostPathOnRandomGraph) {
  const EdgeList g = gen::erdos_renyi(500, 4000, 3);
  prim::ThreadPool pool(2);
  CountingOptions options;
  const PreprocessedGraph host =
      preprocess_for_device(g, small_device(), options, pool);
  const SimulatedPreprocessing sim =
      simulate_preprocessing(g, small_device(), options);
  expect_same_graph(host, sim.graph);
}

TEST(PreprocessSimTest, MatchesHostPathOnSkewedGraph) {
  gen::RmatParams params;
  params.scale = 10;
  params.edge_factor = 10;
  const EdgeList g = gen::rmat(params, 6);
  prim::ThreadPool pool(2);
  CountingOptions options;
  const PreprocessedGraph host =
      preprocess_for_device(g, small_device(), options, pool);
  const SimulatedPreprocessing sim =
      simulate_preprocessing(g, small_device(), options);
  expect_same_graph(host, sim.graph);
}

TEST(PreprocessSimTest, MatchesHostPathWithIsolatedVertices) {
  // Isolated vertices exercise the node-array backfill (the paper's "more
  // than one cell" case) and the boundary fixups.
  const EdgeList g(std::vector<Edge>{{3, 9}, {9, 3}, {3, 15}, {15, 3}}, 40);
  prim::ThreadPool pool(1);
  CountingOptions options;
  const PreprocessedGraph host =
      preprocess_for_device(g, small_device(), options, pool);
  const SimulatedPreprocessing sim =
      simulate_preprocessing(g, small_device(), options);
  expect_same_graph(host, sim.graph);
}

TEST(PreprocessSimTest, CountingOnSimulatedArraysIsExact) {
  const EdgeList g = gen::barabasi_albert(600, 6, 4);
  CountingOptions options;
  const SimulatedPreprocessing sim =
      simulate_preprocessing(g, small_device(), options);
  // The oriented arrays feed the same counting phase; verify via the CPU
  // counting-phase oracle.
  Csr oriented(std::vector<EdgeIndex>(sim.graph.node.begin(),
                                      sim.graph.node.end()),
               sim.graph.soa.dst);
  EXPECT_EQ(cpu::count_forward_counting_phase(oriented), cpu::count_forward(g));
}

TEST(PreprocessSimTest, StatsArePopulated) {
  const EdgeList g = gen::erdos_renyi(300, 2000, 7);
  CountingOptions options;
  const SimulatedPreprocessing sim =
      simulate_preprocessing(g, small_device(), options);
  EXPECT_GT(sim.vertex_count.time_ms, 0.0);
  EXPECT_GT(sim.sort_scatter.time_ms, 0.0);
  EXPECT_GE(sim.sort_passes, 2u);
  EXPECT_GT(sim.node_array.time_ms, 0.0);
  EXPECT_GT(sim.mark_backward.time_ms, 0.0);
  EXPECT_GT(sim.compact.time_ms, 0.0);
  EXPECT_GT(sim.unzip.time_ms, 0.0);
  // Sort dominates preprocessing, as the paper's SIII-D6 discussion implies.
  EXPECT_GT(sim.graph.phases.sort_ms, sim.graph.phases.unzip_ms);
}

TEST(PreprocessSimTest, AnalyticModelWithinFactorOfSimulation) {
  // The validation experiment in miniature: the analytic cost model should
  // agree with the simulated kernels within an order of magnitude on every
  // step (bench_preprocessing reports the exact ratios).
  gen::RmatParams params;
  params.scale = 10;
  params.edge_factor = 12;
  const EdgeList g = gen::rmat(params, 12);
  prim::ThreadPool pool(2);
  CountingOptions options;
  const PreprocessedGraph host =
      preprocess_for_device(g, small_device(), options, pool);
  const SimulatedPreprocessing sim =
      simulate_preprocessing(g, small_device(), options);
  const double analytic = host.phases.preprocessing_ms() - host.phases.h2d_ms;
  const double simulated =
      sim.graph.phases.preprocessing_ms() - sim.graph.phases.h2d_ms;
  EXPECT_GT(simulated / analytic, 0.1);
  EXPECT_LT(simulated / analytic, 10.0);
}

}  // namespace
}  // namespace trico::core
