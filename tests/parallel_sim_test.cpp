// Determinism tests for the multithreaded SM simulation.
//
// The contract (docs/simulator.md): with the sharded L2, per-SM state is
// fully independent, every cross-SM merge is a commutative integer fold,
// and therefore KernelStats — counters AND modeled times — are bit-identical
// for any SimOptions::threads value, including 0 (hardware concurrency).
// These tests pin that contract across kernels, device configs, sampling,
// narrow warps, the multi-GPU concurrent path and the L2 topologies.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/gpu_clustering.hpp"
#include "core/gpu_forward.hpp"
#include "gen/generators.hpp"
#include "multigpu/multi_gpu.hpp"
#include "simt/device.hpp"
#include "simt/runner.hpp"

namespace trico {
namespace {

using simt::DeviceConfig;
using simt::KernelStats;
using simt::LaunchConfig;
using simt::SimOptions;

EdgeList social_graph(std::uint32_t n = 1500) {
  gen::SocialParams params;
  params.n = n;
  params.attach = 5;
  params.closure_rounds = 1.0;
  params.closure_prob = 0.4;
  return gen::social(params, 42);
}

/// EXPECT bit-identical stats: integer counters with EXPECT_EQ, modeled
/// times with EXPECT_EQ on the doubles (the merges are sums/maxes over the
/// same per-SM values in the same order, so even floating point must match
/// exactly, not just approximately).
void expect_identical(const KernelStats& a, const KernelStats& b) {
  EXPECT_EQ(a.threads, b.threads);
  EXPECT_EQ(a.warps, b.warps);
  EXPECT_EQ(a.warp_steps, b.warp_steps);
  EXPECT_EQ(a.lane_loads, b.lane_loads);
  EXPECT_EQ(a.memory.transactions, b.memory.transactions);
  EXPECT_EQ(a.memory.sm_cache_accesses, b.memory.sm_cache_accesses);
  EXPECT_EQ(a.memory.sm_cache_hits, b.memory.sm_cache_hits);
  EXPECT_EQ(a.memory.l2_accesses, b.memory.l2_accesses);
  EXPECT_EQ(a.memory.l2_hits, b.memory.l2_hits);
  EXPECT_EQ(a.memory.dram_lines, b.memory.dram_lines);
  EXPECT_EQ(a.memory.dram_bytes, b.memory.dram_bytes);
  EXPECT_EQ(a.issue_cycles, b.issue_cycles);
  EXPECT_EQ(a.latency_cycles, b.latency_cycles);
  EXPECT_EQ(a.bandwidth_cycles, b.bandwidth_cycles);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.time_ms, b.time_ms);
  EXPECT_EQ(a.sample_scale, b.sample_scale);
}

std::vector<std::uint32_t> thread_counts() {
  return {1, 2, 3, 0};  // 0 = hardware concurrency
}

/// Strided-read kernel: every lane touches its own cache line each step, so
/// the expected transaction count is exact — any silently dropped line
/// transaction (the old fixed-size coalescing buffer) shows up immediately.
class StridedReadKernel {
 public:
  StridedReadKernel(simt::DeviceSpan<std::uint32_t> data, std::uint32_t steps)
      : data_(data), steps_(steps) {}

  struct State {
    std::uint64_t lane_base = 0;
    std::uint32_t remaining = 0;
    std::uint64_t sum = 0;
  };

  void start(State& state, std::uint64_t tid, std::uint64_t) const {
    state.lane_base = tid;
    state.remaining = steps_;
  }

  template <typename Sink>
  bool step(State& state, Sink& sink) const {
    if (state.remaining == 0) return false;
    // 3 reads per lane per step, each on a distinct 128-byte line.
    for (std::uint32_t r = 0; r < 3; ++r) {
      const std::uint64_t line =
          (state.lane_base * 3 + r + state.remaining * 1024) % (data_.size() / 32);
      sink.read(data_.addr(line * 32), 4, true);
      state.sum += data_[line * 32];
    }
    --state.remaining;
    return true;
  }

  void retire(const State& state) { checksum_ += state.sum; }
  [[nodiscard]] std::uint64_t checksum() const { return checksum_; }

 private:
  simt::DeviceSpan<std::uint32_t> data_;
  std::uint32_t steps_;
  std::uint64_t checksum_ = 0;
};

TEST(ParallelSimTest, DirectLaunchIdenticalAcrossThreadCountsAndDevices) {
  for (const DeviceConfig& config :
       {DeviceConfig::gtx_980(), DeviceConfig::tesla_c2050(),
        DeviceConfig::nvs_5200m()}) {
    simt::Device device(config);
    std::vector<std::uint32_t> host(1 << 16);
    for (std::size_t i = 0; i < host.size(); ++i) {
      host[i] = static_cast<std::uint32_t>(i * 2654435761u);
    }
    const auto buffer = device.upload<std::uint32_t>(host);

    KernelStats reference;
    std::uint64_t reference_checksum = 0;
    bool first = true;
    for (std::uint32_t threads : thread_counts()) {
      StridedReadKernel kernel(buffer, 40);
      SimOptions options;
      options.threads = threads;
      const KernelStats stats =
          launch_kernel(device, LaunchConfig{64, 4, 32}, kernel, options);
      if (first) {
        reference = stats;
        reference_checksum = kernel.checksum();
        EXPECT_GT(stats.memory.transactions, 0u);
        first = false;
      } else {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        expect_identical(stats, reference);
        EXPECT_EQ(kernel.checksum(), reference_checksum);
      }
    }
  }
}

TEST(ParallelSimTest, NoLineTransactionsAreDropped) {
  // One block of one full warp, one SM: every lane reads 3 distinct lines
  // per step -> exactly eff_warp * 3 transactions per warp step.
  DeviceConfig config = DeviceConfig::gtx_980();
  config.num_sms = 1;
  simt::Device device(config);
  const std::vector<std::uint32_t> host(1 << 16, 1);
  const auto buffer = device.upload<std::uint32_t>(host);
  for (const std::uint32_t eff_warp : {32u, 8u}) {
    StridedReadKernel kernel(buffer, 10);
    simt::LaunchConfig launch{32, 1, eff_warp};
    const KernelStats stats = launch_kernel(device, launch, kernel);
    // Live steps issue eff_warp lanes x 3 lines; the final step of each
    // warp (returning false) issues none.
    const std::uint64_t live_steps = 10;
    const std::uint64_t warps = (32 + eff_warp - 1) / eff_warp;
    EXPECT_EQ(stats.memory.transactions, warps * live_steps * eff_warp * 3)
        << "eff_warp=" << eff_warp;
  }
}

TEST(ParallelSimTest, PipelineIdenticalAcrossThreadCounts) {
  const EdgeList edges = social_graph();
  for (const DeviceConfig& config :
       {DeviceConfig::gtx_980(), DeviceConfig::tesla_c2050()}) {
    core::GpuCountResult reference;
    bool first = true;
    for (std::uint32_t threads : thread_counts()) {
      core::CountingOptions options;
      options.sim.threads = threads;
      core::GpuForwardCounter counter(config, options);
      const auto result = counter.count(edges);
      if (first) {
        reference = result;
        first = false;
      } else {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        EXPECT_EQ(result.triangles, reference.triangles);
        EXPECT_EQ(result.phases.counting_ms, reference.phases.counting_ms);
        EXPECT_EQ(result.phases.total_ms(), reference.phases.total_ms());
        expect_identical(result.kernel, reference.kernel);
      }
    }
  }
}

TEST(ParallelSimTest, SampledRunIdenticalAcrossThreadCounts) {
  const EdgeList edges = social_graph();
  core::GpuCountResult reference;
  bool first = true;
  for (std::uint32_t threads : thread_counts()) {
    core::CountingOptions options;
    options.sim.sample_sms = 2;
    options.sim.threads = threads;
    core::GpuForwardCounter counter(DeviceConfig::gtx_980(), options);
    const auto result = counter.count(edges);
    if (first) {
      reference = result;
      EXPECT_EQ(result.kernel.sample_scale,
                DeviceConfig::gtx_980().num_sms / 2.0);
      first = false;
    } else {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      EXPECT_EQ(result.triangles, reference.triangles);
      expect_identical(result.kernel, reference.kernel);
    }
  }
}

TEST(ParallelSimTest, NarrowWarpRunIdenticalAcrossThreadCounts) {
  const EdgeList edges = social_graph(800);
  core::GpuCountResult reference;
  bool first = true;
  for (std::uint32_t threads : thread_counts()) {
    core::CountingOptions options;
    options.launch.effective_warp_size = 8;  // §III-D5 narrow-warp variant
    options.sim.threads = threads;
    core::GpuForwardCounter counter(DeviceConfig::gtx_980(), options);
    const auto result = counter.count(edges);
    if (first) {
      reference = result;
      first = false;
    } else {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      EXPECT_EQ(result.triangles, reference.triangles);
      expect_identical(result.kernel, reference.kernel);
    }
  }
}

TEST(ParallelSimTest, PerVertexAtomicKernelIdenticalAcrossThreadCounts) {
  const EdgeList edges = social_graph(800);
  core::GpuLocalClusteringResult reference;
  bool first = true;
  for (std::uint32_t threads : thread_counts()) {
    core::CountingOptions options;
    options.sim.threads = threads;
    core::GpuClusteringAnalyzer analyzer(DeviceConfig::gtx_980(), options);
    const auto result = analyzer.analyze_local(edges);
    if (first) {
      reference = result;
      first = false;
    } else {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      // The per-vertex histogram is built by (modeled) atomic adds from
      // warps on every SM; relaxed commutative increments must agree with
      // the sequential run exactly.
      EXPECT_EQ(result.per_vertex_triangles, reference.per_vertex_triangles);
    }
  }
}

TEST(ParallelSimTest, MultiGpuConcurrentPathIdenticalAcrossThreadCounts) {
  const EdgeList edges = social_graph(800);
  multigpu::MultiGpuResult reference;
  bool first = true;
  for (std::uint32_t threads : thread_counts()) {
    core::CountingOptions options;
    options.sim.sample_sms = 2;
    options.sim.threads = threads;
    multigpu::MultiGpuCounter counter(DeviceConfig::tesla_c2050(), 4, options);
    const auto result = counter.count(edges);
    if (first) {
      reference = result;
      ASSERT_EQ(result.slices.size(), 4u);
      first = false;
    } else {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      EXPECT_EQ(result.triangles, reference.triangles);
      EXPECT_EQ(result.counting_ms, reference.counting_ms);
      ASSERT_EQ(result.slices.size(), reference.slices.size());
      for (std::size_t d = 0; d < result.slices.size(); ++d) {
        EXPECT_EQ(result.slices[d].edges, reference.slices[d].edges);
        EXPECT_EQ(result.slices[d].triangles, reference.slices[d].triangles);
        EXPECT_EQ(result.slices[d].counting_ms,
                  reference.slices[d].counting_ms);
      }
    }
  }
}

TEST(ParallelSimTest, SharedTopologyMatchesCountsAndForcesSequential) {
  const EdgeList edges = social_graph(800);
  core::CountingOptions sharded;
  sharded.sim.threads = 0;
  core::CountingOptions shared;
  shared.sim.l2_topology = simt::L2Topology::kShared;
  shared.sim.threads = 0;  // runner must ignore this and run sequentially
  core::GpuForwardCounter a(DeviceConfig::gtx_980(), sharded);
  core::GpuForwardCounter b(DeviceConfig::gtx_980(), shared);
  const auto ra = a.count(edges);
  const auto rb = b.count(edges);
  // Counts are exact under both topologies; only cache statistics differ.
  EXPECT_EQ(ra.triangles, rb.triangles);
  EXPECT_EQ(ra.kernel.lane_loads, rb.kernel.lane_loads);
  EXPECT_EQ(ra.kernel.memory.transactions, rb.kernel.memory.transactions);
}

TEST(ParallelSimTest, RepeatedParallelRunsAreStable) {
  // Same options, many repetitions: guards against latent scheduling
  // nondeterminism that a single pairwise comparison could miss.
  const EdgeList edges = social_graph(600);
  core::CountingOptions options;
  options.sim.threads = 0;
  core::GpuCountResult reference;
  for (int run = 0; run < 3; ++run) {
    core::GpuForwardCounter counter(DeviceConfig::gtx_980(), options);
    const auto result = counter.count(edges);
    if (run == 0) {
      reference = result;
    } else {
      SCOPED_TRACE("run=" + std::to_string(run));
      EXPECT_EQ(result.triangles, reference.triangles);
      expect_identical(result.kernel, reference.kernel);
    }
  }
}

}  // namespace
}  // namespace trico
