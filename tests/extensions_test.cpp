// Tests for the extension features: triangle listing, the binary-search
// intersection kernel (Green et al. [15] comparison), the GPU clustering
// analyzer (Leist et al. [13] comparison), and METIS/DIMACS-10 IO.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "analysis/clustering.hpp"
#include "core/gpu_clustering.hpp"
#include "core/gpu_forward.hpp"
#include "cpu/counting.hpp"
#include "cpu/listing.hpp"
#include "gen/generators.hpp"
#include "gen/reference.hpp"
#include "graph/io.hpp"

namespace trico {
namespace {

simt::DeviceConfig small_device() {
  simt::DeviceConfig config = simt::DeviceConfig::gtx_980();
  config.num_sms = 4;
  return config;
}

// ---- Triangle listing ----

TEST(ListingTest, CountMatchesListSize) {
  const EdgeList g = gen::erdos_renyi(300, 2500, 4);
  EXPECT_EQ(cpu::list_triangles(g).size(), cpu::count_forward(g));
}

TEST(ListingTest, TrianglesAreDistinctAndReal) {
  const EdgeList g = gen::barabasi_albert(400, 6, 5);
  const auto triangles = cpu::list_triangles(g);
  std::set<cpu::Triangle> unique(triangles.begin(), triangles.end());
  EXPECT_EQ(unique.size(), triangles.size()) << "duplicate triangle listed";
  const Csr adjacency = Csr::from_edge_list(g);
  auto connected = [&](VertexId x, VertexId y) {
    const auto nbrs = adjacency.neighbors(x);
    return std::binary_search(nbrs.begin(), nbrs.end(), y);
  };
  for (const cpu::Triangle& t : triangles) {
    EXPECT_TRUE(connected(t.a, t.b) && connected(t.b, t.c) &&
                connected(t.a, t.c));
  }
}

TEST(ListingTest, KnownTriangleList) {
  const gen::ReferenceGraph g = gen::disjoint_triangles(3);
  auto triangles = cpu::list_triangles(g.edges);
  ASSERT_EQ(triangles.size(), 3u);
  std::sort(triangles.begin(), triangles.end());
  for (VertexId i = 0; i < 3; ++i) {
    EXPECT_EQ(triangles[i].a % 3 + triangles[i].b % 3 + triangles[i].c % 3, 3u)
        << "each listed triangle covers one 3-vertex block";
  }
}

TEST(ListingTest, EarlyStopVisitsOnce) {
  const gen::ReferenceGraph g = gen::complete(10);
  int visits = 0;
  cpu::for_each_triangle(g.edges, [&](const cpu::Triangle&) {
    ++visits;
    return false;
  });
  EXPECT_EQ(visits, 1);
}

TEST(ListingTest, HasTriangle) {
  EXPECT_TRUE(cpu::has_triangle(gen::complete(3).edges));
  EXPECT_FALSE(cpu::has_triangle(gen::grid(5, 5).edges));
  EXPECT_FALSE(cpu::has_triangle(EdgeList{}));
}

// ---- Binary-search intersection strategy ----

TEST(BinarySearchStrategyTest, MatchesMergeOnAllGraphs) {
  core::CountingOptions merge_options;
  core::CountingOptions search_options;
  search_options.strategy = core::IntersectionStrategy::kBinarySearch;
  core::GpuForwardCounter merge(small_device(), merge_options);
  core::GpuForwardCounter search(small_device(), search_options);
  for (const gen::ReferenceGraph& g : gen::all_small_references()) {
    EXPECT_EQ(search.count(g.edges).triangles, g.expected_triangles)
        << g.family;
  }
  const EdgeList g = gen::barabasi_albert(800, 7, 6);
  EXPECT_EQ(search.count(g).triangles, merge.count(g).triangles);
}

TEST(BinarySearchStrategyTest, AoSVariantAgrees) {
  core::CountingOptions options;
  options.strategy = core::IntersectionStrategy::kBinarySearch;
  options.variant.soa = false;
  core::GpuForwardCounter counter(small_device(), options);
  const EdgeList g = gen::erdos_renyi(300, 2000, 8);
  EXPECT_EQ(counter.count(g).triangles, cpu::count_forward(g));
}

TEST(BinarySearchStrategyTest, IssuesMoreTransactionsOnSkewedGraphs) {
  // The mechanism behind the paper's SV claim: bisection probes scatter
  // across the long lists, touching more lines than two sequential streams.
  gen::RmatParams params;
  params.scale = 11;
  params.edge_factor = 16;
  const EdgeList g = gen::rmat(params, 3);
  core::CountingOptions merge_options;
  core::GpuForwardCounter merge(small_device(), merge_options);
  core::CountingOptions search_options;
  search_options.strategy = core::IntersectionStrategy::kBinarySearch;
  core::GpuForwardCounter search(small_device(), search_options);
  const auto r_merge = merge.count(g);
  const auto r_search = search.count(g);
  EXPECT_EQ(r_merge.triangles, r_search.triangles);
  EXPECT_GT(r_search.kernel.cycles, r_merge.kernel.cycles)
      << "merge should win end to end (the paper's SV comparison)";
}

// ---- GPU clustering analyzer ----

TEST(GpuClusteringTest, MatchesHostAnalysis) {
  const EdgeList g = gen::watts_strogatz(2000, 5, 0.1, 7);
  core::GpuClusteringAnalyzer analyzer(small_device());
  const core::GpuClusteringResult r = analyzer.analyze(g);
  EXPECT_EQ(r.triangles, cpu::count_forward(g));
  EXPECT_EQ(r.wedges, analysis::wedge_count(g));
  EXPECT_NEAR(r.transitivity(), analysis::transitivity(g), 1e-12);
}

TEST(GpuClusteringTest, WedgePhaseIsCheap) {
  // The paper's SV argument: computing two-edge paths is "not harder" than
  // counting triangles — at most a 2x overhead. In practice the wedge pass
  // is a tiny streaming kernel.
  gen::RmatParams params;
  params.scale = 11;
  params.edge_factor = 16;
  const EdgeList g = gen::rmat(params, 9);
  core::GpuClusteringAnalyzer analyzer(small_device());
  const auto r = analyzer.analyze(g);
  EXPECT_LT(r.wedge_ms, r.triangle_ms);
  EXPECT_LT(r.total_ms(), 2.0 * r.triangle_ms);
}

TEST(GpuClusteringTest, KnownValues) {
  const gen::ReferenceGraph g = gen::complete(8);
  core::GpuClusteringAnalyzer analyzer(small_device());
  const auto r = analyzer.analyze(g.edges);
  EXPECT_DOUBLE_EQ(r.transitivity(), 1.0);
}

// ---- METIS / DIMACS-10 IO ----

TEST(MetisIoTest, ParsesMinimalGraph) {
  // Triangle as METIS: 3 vertices, 3 edges.
  std::stringstream in("% comment\n3 3\n2 3\n1 3\n1 2\n");
  const EdgeList g = io::read_metis(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(cpu::count_forward(g), 1u);
}

TEST(MetisIoTest, RoundTrip) {
  const EdgeList g = gen::erdos_renyi(100, 500, 6);
  std::stringstream stream;
  io::write_metis(stream, g);
  const EdgeList back = io::read_metis(stream);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  EXPECT_EQ(cpu::count_forward(back), cpu::count_forward(g));
}

TEST(MetisIoTest, RejectsMalformedInputs) {
  std::stringstream no_header("");
  EXPECT_THROW(io::read_metis(no_header), io::IoError);
  std::stringstream bad_header("abc def\n");
  EXPECT_THROW(io::read_metis(bad_header), io::IoError);
  std::stringstream weighted("2 1 11\n2\n1\n");
  EXPECT_THROW(io::read_metis(weighted), io::IoError);
  std::stringstream out_of_range("2 1\n5\n1\n");
  EXPECT_THROW(io::read_metis(out_of_range), io::IoError);
  std::stringstream truncated("3 3\n2 3\n");
  EXPECT_THROW(io::read_metis(truncated), io::IoError);
  std::stringstream wrong_count("3 7\n2 3\n1 3\n1 2\n");
  EXPECT_THROW(io::read_metis(wrong_count), io::IoError);
}

TEST(MetisIoTest, HandlesIsolatedVertices) {
  std::stringstream in("4 1\n2\n1\n\n\n");
  const EdgeList g = io::read_metis(in);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 1u);
}

}  // namespace
}  // namespace trico
