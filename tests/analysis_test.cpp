// Tests for the network-analysis metrics (clustering coefficient,
// transitivity) that motivate triangle counting in the paper's introduction.

#include <gtest/gtest.h>

#include "analysis/clustering.hpp"
#include "gen/generators.hpp"
#include "gen/reference.hpp"

namespace trico::analysis {
namespace {

TEST(ClusteringTest, CompleteGraphIsFullyClustered) {
  const gen::ReferenceGraph g = gen::complete(6);
  for (double c : local_clustering(g.edges)) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_DOUBLE_EQ(global_clustering(g.edges), 1.0);
  EXPECT_DOUBLE_EQ(transitivity(g.edges), 1.0);
}

TEST(ClusteringTest, TreeHasZeroClustering) {
  const gen::ReferenceGraph g = gen::star(10);
  EXPECT_DOUBLE_EQ(global_clustering(g.edges), 0.0);
  EXPECT_DOUBLE_EQ(transitivity(g.edges), 0.0);
}

TEST(ClusteringTest, TriangleWithPendantVertex) {
  // Triangle {0,1,2} plus pendant 3 attached to 0.
  const EdgeList g = EdgeList::from_undirected_pairs(
      std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  const auto local = local_clustering(g);
  EXPECT_DOUBLE_EQ(local[0], 1.0 / 3.0);  // deg 3, 1 triangle of C(3,2)=3
  EXPECT_DOUBLE_EQ(local[1], 1.0);
  EXPECT_DOUBLE_EQ(local[2], 1.0);
  EXPECT_DOUBLE_EQ(local[3], 0.0);  // degree 1: defined as 0
}

TEST(ClusteringTest, TransitivityOfWheel) {
  // W_5: hub degree 4, rim vertices degree 3, 4 triangles.
  const gen::ReferenceGraph g = gen::wheel(5);
  const std::uint64_t wedges = wedge_count(g.edges);
  EXPECT_EQ(wedges, 6u + 4u * 3u);  // C(4,2) + 4 * C(3,2)
  EXPECT_DOUBLE_EQ(transitivity(g.edges), 3.0 * 4.0 / 18.0);
}

TEST(ClusteringTest, WattsStrogatzSmallWorldHasHighClustering) {
  // The defining property of the WS model at low rewiring probability.
  const EdgeList ws = gen::watts_strogatz(1000, 5, 0.05, 1);
  const EdgeList er = gen::erdos_renyi(1000, ws.num_edges(), 1);
  EXPECT_GT(global_clustering(ws), 5.0 * global_clustering(er));
}

TEST(ClusteringTest, ValuesAreProbabilities) {
  const EdgeList g = gen::barabasi_albert(500, 4, 3);
  for (double c : local_clustering(g)) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
  EXPECT_GE(transitivity(g), 0.0);
  EXPECT_LE(transitivity(g), 1.0);
}

TEST(ClusteringTest, EmptyGraph) {
  EXPECT_DOUBLE_EQ(global_clustering(EdgeList{}), 0.0);
  EXPECT_DOUBLE_EQ(transitivity(EdgeList{}), 0.0);
}

}  // namespace
}  // namespace trico::analysis
