// Tests for the SIMT simulator substrate: cache behaviour, memory-system
// routing, device allocation, launch validation, and runner execution with a
// simple synthetic kernel.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simt/cache.hpp"
#include "simt/cost_model.hpp"
#include "simt/device.hpp"
#include "simt/launch.hpp"
#include "simt/memory_system.hpp"
#include "simt/runner.hpp"

namespace trico::simt {
namespace {

CacheGeometry tiny_cache() {
  // 4 sets x 2 ways x 64B lines = 512 B; true LRU and unhashed sets for
  // deterministic eviction-order tests.
  return CacheGeometry{512, 64, 2, Replacement::kLru, /*hash_sets=*/false};
}

TEST(CacheTest, ColdMissThenHit) {
  SetAssocCache cache(tiny_cache());
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(63));   // same line
  EXPECT_FALSE(cache.access(64));  // next line
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(CacheTest, LruEvictionWithinSet) {
  SetAssocCache cache(tiny_cache());
  // Set count = 4; lines A, B, C all map to set 0 (line addr multiple of 4*64).
  const std::uint64_t a = 0, b = 4 * 64, c = 8 * 64;
  EXPECT_FALSE(cache.access(a));
  EXPECT_FALSE(cache.access(b));
  EXPECT_TRUE(cache.access(a));   // A is now MRU
  EXPECT_FALSE(cache.access(c));  // evicts B (LRU)
  EXPECT_TRUE(cache.access(a));
  EXPECT_FALSE(cache.access(b));  // B was evicted
}

TEST(CacheTest, CapacitySweepHitRateDropsPastWorkingSet) {
  // Streaming over a working set smaller than the cache -> ~100% hit after
  // warmup; larger than the cache -> ~0% under LRU (streaming pathology).
  SetAssocCache small_ws(CacheGeometry{4096, 64, 4, Replacement::kLru, false});
  for (int rep = 0; rep < 4; ++rep) {
    for (std::uint64_t addr = 0; addr < 2048; addr += 64) small_ws.access(addr);
  }
  EXPECT_GT(small_ws.hit_rate(), 0.7);

  SetAssocCache big_ws(CacheGeometry{4096, 64, 4, Replacement::kLru, false});
  for (int rep = 0; rep < 4; ++rep) {
    for (std::uint64_t addr = 0; addr < 16384; addr += 64) big_ws.access(addr);
  }
  EXPECT_LT(big_ws.hit_rate(), 0.1);
}

TEST(CacheTest, RandomReplacementAvoidsLruCliffAtModestOversubscription) {
  // Cyclic stream over 1.5x capacity: true LRU hits exactly never after
  // warmup (each line is evicted just before its reuse), while random
  // replacement retains a fraction of the set (survival (1-1/w)^k > 0).
  SetAssocCache lru(CacheGeometry{4096, 64, 4, Replacement::kLru, false});
  SetAssocCache rnd(CacheGeometry{4096, 64, 4, Replacement::kRandom, false});
  for (int rep = 0; rep < 8; ++rep) {
    for (std::uint64_t addr = 0; addr < 6144; addr += 64) {
      lru.access(addr);
      rnd.access(addr);
    }
  }
  EXPECT_LT(lru.hit_rate(), 0.01);
  EXPECT_GT(rnd.hit_rate(), 0.05);
  EXPECT_LT(rnd.hit_rate(), 0.6);
}

TEST(CacheTest, FlushDropsContents) {
  SetAssocCache cache(tiny_cache());
  cache.access(0);
  cache.flush();
  EXPECT_FALSE(cache.access(0));
}

TEST(CacheTest, RejectsBadGeometry) {
  EXPECT_THROW(SetAssocCache(CacheGeometry{0, 64, 2}), std::invalid_argument);
  EXPECT_THROW(SetAssocCache(CacheGeometry{512, 48, 2}), std::invalid_argument);
}

TEST(MemorySystemTest, RoutesThroughSmCacheThenL2) {
  DeviceConfig config = DeviceConfig::gtx_980();
  MemorySystem memory(config, 2, 1.0, L2Topology::kShared);
  // Read-only eligible access: first touch misses everything -> DRAM.
  const TransactionResult cold = memory.access(0, 0x1000, true);
  EXPECT_TRUE(cold.dram);
  EXPECT_EQ(cold.latency_cycles, config.dram_latency_cycles);
  // Second touch hits the SM cache.
  const TransactionResult warm = memory.access(0, 0x1000, true);
  EXPECT_FALSE(warm.dram);
  EXPECT_EQ(warm.latency_cycles, config.sm_cache_latency_cycles);
  // Other SM misses its own cache but hits the shared L2.
  const TransactionResult peer = memory.access(1, 0x1000, true);
  EXPECT_FALSE(peer.dram);
  EXPECT_EQ(peer.latency_cycles, config.l2_latency_cycles);
}

TEST(MemorySystemTest, ShardedL2SlicesArePrivatePerSm) {
  DeviceConfig config = DeviceConfig::gtx_980();
  MemorySystem memory(config, 2);  // default topology: sharded
  memory.access(0, 0x1000, true);
  // Same line, same SM: the slice (or SM cache) holds it.
  const TransactionResult warm = memory.access(0, 0x1000, true);
  EXPECT_FALSE(warm.dram);
  // Same line from the other SM: its private slice is cold -> DRAM. This is
  // the sharded model's deliberate deviation from the shared L2 (it is what
  // makes per-SM simulation order-independent and parallelizable).
  const TransactionResult peer = memory.access(1, 0x1000, true);
  EXPECT_TRUE(peer.dram);
  EXPECT_EQ(memory.sm_counters(0).transactions, 2u);
  EXPECT_EQ(memory.sm_counters(1).transactions, 1u);
  EXPECT_EQ(memory.counters().transactions, 3u);
}

TEST(MemorySystemTest, NonReadonlySkipsSmCacheOnMaxwell) {
  DeviceConfig config = DeviceConfig::gtx_980();
  MemorySystem memory(config, 1);
  memory.access(0, 0x2000, false);
  memory.access(0, 0x2000, false);
  EXPECT_EQ(memory.counters().sm_cache_accesses, 0u);
  EXPECT_EQ(memory.counters().l2_hits, 1u);
}

TEST(MemorySystemTest, DramBytesCountLineGranularity) {
  DeviceConfig config = DeviceConfig::gtx_980();
  MemorySystem memory(config, 1);
  memory.access(0, 0, true);
  EXPECT_EQ(memory.counters().dram_bytes, config.l2.line_bytes);
}

TEST(DeviceTest, UploadPreservesDataAndAssignsAddresses) {
  Device device(DeviceConfig::gtx_980());
  const std::vector<std::uint32_t> host{10, 20, 30};
  const DeviceSpan<std::uint32_t> span = device.upload<std::uint32_t>(host);
  EXPECT_EQ(span.size(), 3u);
  EXPECT_EQ(span[1], 20u);
  EXPECT_EQ(span.addr(1) - span.addr(0), 4u);
}

TEST(DeviceTest, AllocationsAreDisjoint) {
  Device device(DeviceConfig::gtx_980());
  const std::vector<std::uint32_t> host(100, 1);
  const auto a = device.upload<std::uint32_t>(host);
  const auto b = device.upload<std::uint32_t>(host);
  EXPECT_GE(b.addr(0), a.addr(0) + 400);
}

TEST(DeviceTest, OutOfMemoryThrows) {
  DeviceConfig config = DeviceConfig::nvs_5200m();
  config.memory_bytes = 1024;
  Device device(config);
  const std::vector<std::uint32_t> host(1000, 0);
  EXPECT_THROW(device.upload<std::uint32_t>(host), std::runtime_error);
}

TEST(LaunchConfigTest, ValidatesAgainstDeviceLimits) {
  const DeviceConfig config = DeviceConfig::tesla_c2050();
  LaunchConfig good{64, 8, 32};
  EXPECT_NO_THROW(good.validate(config));
  LaunchConfig too_many_threads{2048, 1, 32};
  EXPECT_THROW(too_many_threads.validate(config), std::invalid_argument);
  LaunchConfig too_many_blocks{32, 16, 32};
  EXPECT_THROW(too_many_blocks.validate(config), std::invalid_argument);
  LaunchConfig zero{0, 8, 32};
  EXPECT_THROW(zero.validate(config), std::invalid_argument);
  LaunchConfig bad_warp{64, 8, 64};
  EXPECT_THROW(bad_warp.validate(config), std::invalid_argument);
}

TEST(DevicePresetsTest, MatchPublishedSpecs) {
  const DeviceConfig c2050 = DeviceConfig::tesla_c2050();
  EXPECT_EQ(c2050.num_sms, 14u);
  EXPECT_NEAR(c2050.dram_bandwidth_gbps, 144.0, 1.0);
  EXPECT_TRUE(c2050.l1_caches_all_global_loads);

  const DeviceConfig gtx980 = DeviceConfig::gtx_980();
  EXPECT_EQ(gtx980.num_sms, 16u);
  EXPECT_NEAR(gtx980.dram_bandwidth_gbps, 224.0, 1.0);
  EXPECT_FALSE(gtx980.l1_caches_all_global_loads);

  const DeviceConfig nvs = DeviceConfig::nvs_5200m();
  EXPECT_EQ(nvs.num_sms, 2u);
}

// ---- Runner with a synthetic "sum an array" kernel ----

/// Grid-stride sum: thread t accumulates values[t], values[t + T], ...
class SumKernel {
 public:
  explicit SumKernel(DeviceSpan<std::uint32_t> values) : values_(values) {}

  struct State {
    std::uint64_t index = 0;
    std::uint64_t stride = 0;
    std::uint64_t sum = 0;
  };

  void start(State& state, std::uint64_t tid, std::uint64_t total) const {
    state.index = tid;
    state.stride = total;
    state.sum = 0;
  }

  template <typename Sink>
  bool step(State& state, Sink& sink) const {
    if (state.index >= values_.size()) return false;
    sink.read(values_.addr(state.index), 4, true);
    state.sum += values_[state.index];
    state.index += state.stride;
    return true;
  }

  void retire(const State& state) { total_ += state.sum; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  DeviceSpan<std::uint32_t> values_;
  std::uint64_t total_ = 0;
};

TEST(RunnerTest, SumKernelIsExact) {
  Device device(DeviceConfig::gtx_980());
  std::vector<std::uint32_t> values(100000);
  std::iota(values.begin(), values.end(), 0u);
  const auto span = device.upload<std::uint32_t>(values);
  SumKernel kernel(span);
  const LaunchConfig launch{64, 8, 32};
  const KernelStats stats = launch_kernel(device, launch, kernel);
  const std::uint64_t expected =
      std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  EXPECT_EQ(kernel.total(), expected);
  EXPECT_GT(stats.time_ms, 0.0);
  EXPECT_GT(stats.warps, 0u);
  EXPECT_GT(stats.memory.transactions, 0u);
}

TEST(RunnerTest, SamplingKeepsResultExact) {
  Device device(DeviceConfig::gtx_980());
  std::vector<std::uint32_t> values(50000, 3);
  const auto span = device.upload<std::uint32_t>(values);

  SumKernel full(span);
  const KernelStats full_stats = launch_kernel(device, LaunchConfig{64, 8, 32}, full);

  SumKernel sampled(span);
  SimOptions options;
  options.sample_sms = 2;
  const KernelStats sampled_stats =
      launch_kernel(device, LaunchConfig{64, 8, 32}, sampled, options);

  EXPECT_EQ(sampled.total(), full.total()) << "sampling must not change results";
  // Sampled timing should be within a factor ~2 of the full simulation for a
  // uniform workload.
  EXPECT_GT(sampled_stats.time_ms, full_stats.time_ms * 0.3);
  EXPECT_LT(sampled_stats.time_ms, full_stats.time_ms * 3.0);
}

TEST(RunnerTest, StreamingKernelIsBandwidthBound) {
  // A pure streaming sum over a large array should be limited by the DRAM
  // bandwidth bound, and its achieved bandwidth should be near peak.
  Device device(DeviceConfig::gtx_980());
  std::vector<std::uint32_t> values(2000000, 1);
  const auto span = device.upload<std::uint32_t>(values);
  SumKernel kernel(span);
  const KernelStats stats = launch_kernel(device, LaunchConfig{256, 8, 32}, kernel);
  EXPECT_GT(stats.achieved_bandwidth_gbps(),
            0.4 * DeviceConfig::gtx_980().dram_bandwidth_gbps);
}

TEST(RunnerTest, SmallerEffectiveWarpsIncreaseWarpCount) {
  Device device(DeviceConfig::gtx_980());
  std::vector<std::uint32_t> values(10000, 1);
  const auto span = device.upload<std::uint32_t>(values);
  SumKernel k32(span);
  const KernelStats s32 = launch_kernel(device, LaunchConfig{64, 8, 32}, k32);
  SumKernel k16(span);
  const KernelStats s16 = launch_kernel(device, LaunchConfig{64, 8, 16}, k16);
  EXPECT_EQ(k16.total(), k32.total());
  EXPECT_EQ(s16.warps, 2 * s32.warps);
}

TEST(CostModelTest, TransfersScaleWithBytes) {
  const DeviceConfig config = DeviceConfig::gtx_980();
  const CostModel cost(config);
  EXPECT_GT(cost.transfer_ms(1 << 20), cost.transfer_ms(1 << 10));
  EXPECT_NEAR(cost.transfer_ms(0), config.pcie_latency_ms, 1e-9);
}

TEST(CostModelTest, RadixBeatsMergeSortForLargeArrays) {
  const CostModel cost(DeviceConfig::gtx_980());
  const std::uint64_t m = 10'000'000;
  // §III-D2: the 64-bit radix path is ~5x faster than comparison sorting.
  const double radix = cost.radix_sort_ms(m, 8, 5);
  const double merge = cost.merge_sort_ms(m, 8);
  EXPECT_GT(merge / radix, 3.0);
  EXPECT_LT(merge / radix, 8.0);
}

TEST(CostModelTest, UnzipIsCheap) {
  // §III-D1: unzip takes < 30 ms even for 200M-edge graphs.
  const CostModel cost(DeviceConfig::gtx_980());
  EXPECT_LT(cost.unzip_ms(200'000'000), 60.0);
}

}  // namespace
}  // namespace trico::simt
