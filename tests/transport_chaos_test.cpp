// End-to-end chaos test of the cross-process stack: a WorkerSupervisor over
// real trico_cli serve worker processes, a storm of mixed-tenant requests,
// a kill -9 mid-run, and wire faults (torn frames, delayed acks) armed in
// every worker. The acceptance invariants from the robustness contract:
//
//  * every kOk response carries the exact triangle count for its graph
//    (computed once client-side from the reference family);
//  * every failure is a typed error, never a hang or a wrong count;
//  * the killed worker is respawned by the supervisor (restarts >= 1);
//  * duplicate retried requests execute at most once server-side (the
//    per-process wire tests prove the dedup mechanics; here the torn-frame
//    rate stresses them under concurrency).
//
// The request count defaults to a ctest-friendly size; CI scales it up via
// TRICO_CHAOS_REQUESTS (the transport-chaos workflow job runs 500).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/reference.hpp"
#include "service/request.hpp"
#include "transport/client.hpp"
#include "transport/supervisor.hpp"

#ifndef TRICO_CLI_PATH
#error "TRICO_CLI_PATH must be defined by the build (path to trico_cli)"
#endif

namespace trico::transport {
namespace {

std::shared_ptr<const EdgeList> share(EdgeList edges) {
  return std::make_shared<const EdgeList>(std::move(edges));
}

int requested_load(int fallback) {
  const char* env = std::getenv("TRICO_CHAOS_REQUESTS");
  if (env == nullptr) return fallback;
  const int n = std::atoi(env);
  return n > 0 ? n : fallback;
}

TEST(TransportChaosTest, SupervisedWorkersSurviveKillAndTornFrames) {
  SupervisorOptions sopts;
  sopts.cli_path = TRICO_CLI_PATH;
  sopts.num_workers = 2;
  // Every worker arms seeded wire chaos: torn response frames and delayed
  // acks at rates high enough that a multi-hundred-request run hits both
  // repeatedly. (Worker kill is driven explicitly below so the test is not
  // hostage to a rate lottery.)
  sopts.worker_args = {"--chaos-seed", "20260808", "--chaos-torn", "0.05",
                       "--chaos-delay", "0.05", "--chaos-max-delay", "2"};
  sopts.monitor_period_ms = 20;
  sopts.client.max_attempts = 8;
  sopts.client.backoff_initial_ms = 5;
  sopts.client.backoff_max_ms = 100;

  WorkerSupervisor supervisor(sopts);
  supervisor.start();
  ASSERT_EQ(supervisor.workers().size(), 2u);

  const auto complete = gen::complete(20);
  const auto windmill = gen::windmill(6, 8);
  const auto complete_graph = share(complete.edges);
  const auto windmill_graph = share(windmill.edges);

  const int total = requested_load(120);
  constexpr int kClients = 4;
  std::atomic<int> wrong_counts{0};
  std::atomic<int> typed_failures{0};
  std::atomic<int> ok_count{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = c; i < total; i += kClients) {
        const bool big = i % 2 == 0;
        service::Request request;
        request.graph = big ? complete_graph : windmill_graph;
        request.op = service::Operation::kCount;
        request.backend = service::Backend::kCpuHybrid;
        request.tenant_id = "tenant-" + std::to_string(c);
        try {
          const service::Response response = supervisor.execute(request);
          if (response.status == service::Status::kOk) {
            const TriangleCount expected = big ? complete.expected_triangles
                                               : windmill.expected_triangles;
            if (response.triangles != expected) ++wrong_counts;
            ++ok_count;
          } else {
            // Clean typed rejection (reason attached) — acceptable.
            EXPECT_FALSE(response.reason.empty());
            ++typed_failures;
          }
        } catch (const TransportError&) {
          // Typed transport failure after honest retries — acceptable.
          ++typed_failures;
        }
      }
    });
  }

  // Mid-run: kill -9 one worker. The supervisor must respawn it and the
  // in-flight requests must re-route, not hang or miscount.
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    supervisor.kill_worker(0);
  });

  for (std::thread& thread : clients) thread.join();
  killer.join();

  EXPECT_EQ(wrong_counts.load(), 0) << "chaos corrupted an exact count";
  EXPECT_GT(ok_count.load(), total / 2)
      << "too few successes: the retry/reroute path is not recovering";

  // The kill was observed and repaired. The monitor detects the death and
  // respawns asynchronously (monitor period + restart backoff), so a short
  // load can finish before the repair lands — wait a bounded window.
  const auto repaired = [&] {
    if (supervisor.stats().restarts < 1) return false;
    for (const WorkerStatus& worker : supervisor.workers()) {
      if (!worker.alive) return false;
    }
    return true;
  };
  for (int i = 0; i < 500 && !repaired(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(supervisor.stats().restarts, 1u)
      << "killed worker was never respawned";
  for (const WorkerStatus& worker : supervisor.workers()) {
    EXPECT_TRUE(worker.alive);
  }

  supervisor.stop();
}

TEST(TransportChaosTest, WorkerKillChaosSiteIsSurvivable) {
  // Workers roll kWireWorkerKill on every request receipt: processes die
  // abruptly and repeatedly under load, and the supervisor + idempotent
  // client retries still deliver exact counts or typed errors.
  SupervisorOptions sopts;
  sopts.cli_path = TRICO_CLI_PATH;
  sopts.num_workers = 2;
  sopts.worker_args = {"--chaos-seed", "7", "--chaos-kill", "0.03"};
  sopts.monitor_period_ms = 20;
  sopts.client.max_attempts = 6;
  sopts.client.backoff_initial_ms = 5;
  sopts.client.backoff_max_ms = 100;

  WorkerSupervisor supervisor(sopts);
  supervisor.start();

  const auto reference = gen::complete(16);
  const auto graph = share(reference.edges);
  const int total = requested_load(60);
  int wrong = 0, ok = 0, failed = 0;
  for (int i = 0; i < total; ++i) {
    service::Request request;
    request.graph = graph;
    request.backend = service::Backend::kCpuHybrid;
    try {
      const service::Response response = supervisor.execute(request);
      if (response.status == service::Status::kOk) {
        if (response.triangles != reference.expected_triangles) ++wrong;
        ++ok;
      } else {
        ++failed;
      }
    } catch (const TransportError&) {
      ++failed;
    }
  }
  EXPECT_EQ(wrong, 0);
  EXPECT_GT(ok, 0);
  supervisor.stop();
}

}  // namespace
}  // namespace trico::transport
