// Cross-cutting property tests: every generator x every counting algorithm
// x the GPU pipeline must agree; canonicalization repairs arbitrary slot
// arrays; binary IO rejects corrupted streams without crashing; local
// clustering on the device matches the host.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/gpu_clustering.hpp"
#include "core/gpu_forward.hpp"
#include "cpu/counting.hpp"
#include "analysis/clustering.hpp"
#include "cpu/hybrid.hpp"
#include "gen/generators.hpp"
#include "gen/rng.hpp"
#include "graph/io.hpp"

namespace trico {
namespace {

simt::DeviceConfig small_device() {
  simt::DeviceConfig config = simt::DeviceConfig::gtx_980();
  config.num_sms = 4;
  return config;
}

/// The generator matrix: one modest instance of every generator family.
std::vector<std::pair<std::string, EdgeList>> generator_matrix(std::uint64_t seed) {
  std::vector<std::pair<std::string, EdgeList>> graphs;
  graphs.emplace_back("erdos_renyi", gen::erdos_renyi(300, 1800, seed));
  {
    gen::RmatParams params;
    params.scale = 9;
    params.edge_factor = 8;
    graphs.emplace_back("rmat", gen::rmat(params, seed));
  }
  graphs.emplace_back("barabasi_albert", gen::barabasi_albert(300, 4, seed));
  graphs.emplace_back("watts_strogatz",
                      gen::watts_strogatz(300, 4, 0.15, seed));
  {
    gen::SocialParams params;
    params.n = 300;
    params.attach = 4;
    graphs.emplace_back("social", gen::social(params, seed));
  }
  {
    gen::CopaperParams params;
    params.n = 200;
    params.papers = 150;
    params.max_authors = 10;
    graphs.emplace_back("copaper", gen::copaper(params, seed));
  }
  return graphs;
}

class GeneratorMatrixTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorMatrixTest, AllCountersAgreeOnEveryGenerator) {
  prim::ThreadPool pool(3);
  for (const auto& [name, g] : generator_matrix(GetParam())) {
    const TriangleCount expected = cpu::count_forward(g);
    EXPECT_EQ(cpu::count_edge_iterator(g), expected) << name;
    EXPECT_EQ(cpu::count_compact_forward(g), expected) << name;
    EXPECT_EQ(cpu::count_forward_hashed(g), expected) << name;
    EXPECT_EQ(cpu::count_hybrid(g, 16), expected) << name;
    EXPECT_EQ(cpu::count_hybrid(g, 16, pool), expected) << name;
    EXPECT_EQ(cpu::count_forward_multicore(g, pool), expected) << name;
  }
}

TEST_P(GeneratorMatrixTest, GpuPipelineAgreesOnEveryGenerator) {
  core::GpuForwardCounter counter(small_device());
  for (const auto& [name, g] : generator_matrix(GetParam())) {
    EXPECT_EQ(counter.count(g).triangles, cpu::count_forward(g)) << name;
  }
}

TEST_P(GeneratorMatrixTest, EveryGeneratorEmitsCanonicalForm) {
  for (const auto& [name, g] : generator_matrix(GetParam())) {
    EXPECT_TRUE(g.validate().ok) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorMatrixTest,
                         ::testing::Values<std::uint64_t>(1, 2, 3));

TEST(CanonicalizationFuzzTest, RepairsArbitrarySlotArrays) {
  gen::Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    std::vector<Edge> slots(rng.next_below(200));
    for (Edge& e : slots) {
      e.u = static_cast<VertexId>(rng.next_below(50));
      e.v = static_cast<VertexId>(rng.next_below(50));
    }
    const EdgeList raw(std::move(slots));
    const EdgeList fixed = raw.canonicalized();
    const ValidationReport report = fixed.validate();
    EXPECT_TRUE(report.ok) << report.message;
    // Counting the repaired graph agrees across two algorithms.
    EXPECT_EQ(cpu::count_forward(fixed), cpu::count_edge_iterator(fixed));
  }
}

TEST(BinaryIoFuzzTest, CorruptedStreamsThrowInsteadOfCrashing) {
  const EdgeList g = gen::erdos_renyi(50, 200, 5);
  std::stringstream stream;
  io::write_binary(stream, g);
  const std::string good = stream.str();
  gen::Rng rng(7);
  for (int round = 0; round < 30; ++round) {
    std::string bad = good;
    // Flip a random byte or truncate.
    if (rng.bernoulli(0.5) && !bad.empty()) {
      bad[rng.next_below(bad.size())] ^=
          static_cast<char>(1 + rng.next_below(255));
    } else {
      bad.resize(rng.next_below(bad.size()));
    }
    std::stringstream corrupted(bad);
    try {
      const EdgeList parsed = io::read_binary(corrupted);
      // Some corruptions only touch payload bits — then parsing succeeds
      // and the result must still be structurally usable.
      (void)parsed.validate();
    } catch (const io::IoError&) {
      // Expected for structural corruption.
    } catch (const std::length_error&) {
      // A corrupted slot count can exceed vector limits; also acceptable.
    } catch (const std::bad_alloc&) {
      // Likewise: huge bogus counts must fail cleanly.
    }
  }
  SUCCEED();
}

TEST(GpuLocalClusteringTest, MatchesHostPerVertexCounts) {
  const EdgeList g = gen::barabasi_albert(500, 5, 9);
  core::GpuClusteringAnalyzer analyzer(small_device());
  const auto local = analyzer.analyze_local(g);
  const auto host = cpu::per_vertex_triangles(g);
  ASSERT_EQ(local.per_vertex_triangles.size(), host.size());
  for (std::size_t v = 0; v < host.size(); ++v) {
    EXPECT_EQ(local.per_vertex_triangles[v], host[v]) << "vertex " << v;
  }
  const auto degree = g.degrees();
  EXPECT_NEAR(local.global_coefficient(degree),
              analysis::global_clustering(g), 1e-12);
}

TEST(OrientationAblationTest, IdOrientationPreservesCounts) {
  core::CountingOptions id_options;
  id_options.orient_by_degree = false;
  core::GpuForwardCounter by_id(small_device(), id_options);
  core::GpuForwardCounter by_degree(small_device());
  const EdgeList g = gen::barabasi_albert(500, 5, 12);
  EXPECT_EQ(by_id.count(g).triangles, by_degree.count(g).triangles);
}

TEST(OrientationAblationTest, IdOrientationIsSlowerOnSkewedGraphs) {
  gen::RmatParams params;
  params.scale = 10;
  params.edge_factor = 12;
  const EdgeList g = gen::rmat(params, 7);
  core::CountingOptions id_options;
  id_options.orient_by_degree = false;
  core::GpuForwardCounter by_id(small_device(), id_options);
  core::GpuForwardCounter by_degree(small_device());
  const auto r_id = by_id.count(g);
  const auto r_degree = by_degree.count(g);
  EXPECT_EQ(r_id.triangles, r_degree.triangles);
  EXPECT_GT(r_id.kernel.cycles, r_degree.kernel.cycles)
      << "degree orientation must win on power-law graphs (SII-B)";
}

}  // namespace
}  // namespace trico
