// Tests for the triangle-analytics service layer (src/service/): catalog
// caching and eviction, scheduler admission semantics (backpressure,
// deadlines, cancellation, priorities), cost-model routing, and the full
// service under concurrent mixed workloads with exact-count cross-checks
// against the closed-form reference families.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gen/reference.hpp"
#include "graph/stats.hpp"
#include "prim/task_queue.hpp"
#include "prim/thread_pool.hpp"
#include "service/catalog.hpp"
#include "service/request.hpp"
#include "service/router.hpp"
#include "service/scheduler.hpp"
#include "service/service.hpp"
#include "simt/fault.hpp"

namespace trico::service {
namespace {

std::shared_ptr<const EdgeList> share(EdgeList edges) {
  return std::make_shared<const EdgeList>(std::move(edges));
}

Request count_request(std::shared_ptr<const EdgeList> graph,
                      Backend backend = Backend::kAuto) {
  Request request;
  request.graph = std::move(graph);
  request.op = Operation::kCount;
  request.backend = backend;
  return request;
}

// ---------------------------------------------------------------------------
// prim::TaskQueue

TEST(TaskQueueTest, BoundedRejectsWhenFull) {
  prim::TaskQueue queue(2);
  EXPECT_TRUE(queue.try_push([] {}));
  EXPECT_TRUE(queue.try_push([] {}));
  EXPECT_FALSE(queue.try_push([] {}));
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.rejected(), 1u);
}

TEST(TaskQueueTest, PopsPriorityThenFifo) {
  prim::TaskQueue queue(8);
  std::vector<int> order;
  ASSERT_TRUE(queue.try_push([&] { order.push_back(1); }, 0));
  ASSERT_TRUE(queue.try_push([&] { order.push_back(2); }, 1));
  ASSERT_TRUE(queue.try_push([&] { order.push_back(3); }, 0));
  ASSERT_TRUE(queue.try_push([&] { order.push_back(4); }, 1));
  while (queue.depth() > 0) {
    auto task = queue.pop();
    ASSERT_TRUE(static_cast<bool>(task));
    task();
  }
  EXPECT_EQ(order, (std::vector<int>{2, 4, 1, 3}));
}

TEST(TaskQueueTest, CloseDrainsThenReturnsEmptyTask) {
  prim::TaskQueue queue(4);
  int ran = 0;
  ASSERT_TRUE(queue.try_push([&] { ++ran; }));
  queue.close();
  EXPECT_FALSE(queue.try_push([&] { ++ran; }));  // no admission after close
  auto task = queue.pop();
  ASSERT_TRUE(static_cast<bool>(task));
  task();
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(static_cast<bool>(queue.pop()));  // drained + closed
}

// ---------------------------------------------------------------------------
// GraphCatalog

TEST(CatalogTest, ContentHashIgnoresIdentityButNotContent) {
  const gen::ReferenceGraph a = gen::complete(12);
  const gen::ReferenceGraph b = gen::complete(12);
  const gen::ReferenceGraph c = gen::complete(13);
  EXPECT_EQ(GraphCatalog::content_hash(a.edges), GraphCatalog::content_hash(b.edges));
  EXPECT_NE(GraphCatalog::content_hash(a.edges), GraphCatalog::content_hash(c.edges));
}

TEST(CatalogTest, SecondAcquireHits) {
  prim::ThreadPool pool(1);
  GraphCatalog catalog;
  const auto graph = share(gen::complete(16).edges);
  const auto first = catalog.acquire(graph, pool);
  const auto second = catalog.acquire(graph, pool);
  EXPECT_FALSE(first.hit);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.entry.get(), second.entry.get());  // shared artifacts
  const CatalogStats stats = catalog.stats();
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GT(stats.resident_bytes, 0u);
}

TEST(CatalogTest, ZeroBudgetDisablesCaching) {
  prim::ThreadPool pool(1);
  GraphCatalog::Options options;
  options.byte_budget = 0;
  GraphCatalog catalog(options);
  const auto graph = share(gen::complete(16).edges);
  const auto first = catalog.acquire(graph, pool);
  const auto second = catalog.acquire(graph, pool);
  EXPECT_FALSE(first.hit);
  EXPECT_FALSE(second.hit);
  EXPECT_NE(first.entry.get(), second.entry.get());
  EXPECT_EQ(catalog.stats().builds, 2u);
  EXPECT_EQ(catalog.stats().resident_entries, 0u);
}

TEST(CatalogTest, TinyBudgetEvictsLeastRecentlyUsed) {
  prim::ThreadPool pool(1);
  const auto a = share(gen::complete(20).edges);
  const auto b = share(gen::complete(21).edges);

  // Size one entry, then budget for ~1.5 of them: acquiring both must evict.
  GraphCatalog sizing;
  const std::uint64_t one = sizing.acquire(a, pool).entry->bytes;

  GraphCatalog::Options options;
  options.byte_budget = one + one / 2;
  GraphCatalog catalog(options);
  const auto entry_a = catalog.acquire(a, pool);
  const auto entry_b = catalog.acquire(b, pool);
  const CatalogStats stats = catalog.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.resident_bytes, options.byte_budget);
  // The evicted entry stays usable while this test still holds it.
  EXPECT_GT(entry_a.entry->prepared.oriented.num_vertices(), 0u);
  // Re-acquiring the evicted graph is a miss again.
  EXPECT_FALSE(catalog.acquire(a, pool).hit);
}

TEST(CatalogTest, ConcurrentAcquiresShareOneBuild) {
  constexpr int kThreads = 8;
  GraphCatalog catalog;
  const auto graph = share(gen::windmill(6, 8).edges);
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const CatalogEntry>> entries(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      prim::ThreadPool pool(1);
      entries[static_cast<std::size_t>(t)] = catalog.acquire(graph, pool).entry;
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& entry : entries) {
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry.get(), entries.front().get());
  }
  EXPECT_EQ(catalog.stats().builds, 1u);
}

TEST(CatalogTest, MissingFileRaisesActionableError) {
  try {
    (void)GraphCatalog::load_graph_file("does-not-exist.trico");
    FAIL() << "expected CatalogError";
  } catch (const CatalogError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("does-not-exist.trico"), std::string::npos);
    EXPECT_NE(what.find("bench"), std::string::npos);  // how to regenerate
  }
}

TEST(CatalogTest, TruncatedFileRaisesNotCrashes) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "trico_truncated_test.trico")
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out.write("TRIC", 4);  // far too short for any header
  }
  EXPECT_THROW((void)GraphCatalog::load_graph_file(path), CatalogError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// BackendRouter

TEST(RouterTest, ChainAlwaysEndsAtCpuHybrid) {
  BackendRouter router;
  const GraphStats stats = compute_stats(gen::complete(32).edges);
  for (const Backend backend :
       {Backend::kAuto, Backend::kGpu, Backend::kMultiGpu, Backend::kOutOfCore,
        Backend::kCpuHybrid}) {
    Request request = count_request(nullptr, backend);
    const RouteDecision decision = router.route(stats, false, request);
    ASSERT_FALSE(decision.chain.empty());
    EXPECT_EQ(decision.chain.back(), Backend::kCpuHybrid);
  }
}

TEST(RouterTest, ExplicitBackendHonored) {
  BackendRouter router;
  const GraphStats stats = compute_stats(gen::complete(32).edges);
  const RouteDecision decision =
      router.route(stats, false, count_request(nullptr, Backend::kMultiGpu));
  EXPECT_EQ(decision.chain.front(), Backend::kMultiGpu);
}

TEST(RouterTest, WallClockObjectivePrefersCpuOnWarmCatalog) {
  // With warm artifacts the hybrid engine pays only the counting phase while
  // every simulated tier pays per-step simulation overhead: wall-clock
  // routing must keep the query on the CPU tier.
  BackendRouter router;
  const GraphStats stats = compute_stats(gen::complete(64).edges);
  Request request = count_request(nullptr, Backend::kAuto);
  request.objective = RouteObjective::kWallClock;
  const RouteDecision decision = router.route(stats, true, request);
  EXPECT_EQ(decision.chain.front(), Backend::kCpuHybrid);
}

TEST(RouterTest, ModeledDeviceObjectivePicksDeviceTier) {
  BackendRouter router;
  const GraphStats stats = compute_stats(gen::complete(64).edges);
  Request request = count_request(nullptr, Backend::kAuto);
  request.objective = RouteObjective::kModeledDevice;
  const RouteDecision decision = router.route(stats, true, request);
  EXPECT_NE(decision.chain.front(), Backend::kCpuHybrid);
}

TEST(RouterTest, MemoryConstrainedRoutesOutOfCoreFirst) {
  RouterOptions options;
  options.memory_budget_bytes = 1024;  // nothing fits on-device
  BackendRouter router(options);
  const GraphStats stats = compute_stats(gen::complete(64).edges);
  Request request = count_request(nullptr, Backend::kAuto);
  request.objective = RouteObjective::kModeledDevice;
  const RouteDecision decision = router.route(stats, false, request);
  EXPECT_EQ(decision.chain.front(), Backend::kOutOfCore);
  EXPECT_GE(decision.outofcore_colors, 2u);
}

// ---------------------------------------------------------------------------
// RequestScheduler (admission semantics, driven directly)

RequestScheduler::Options small_scheduler(std::size_t capacity) {
  RequestScheduler::Options options;
  options.workers = 1;
  options.queue_capacity = capacity;
  return options;
}

Response ok_response() {
  Response response;
  response.status = Status::kOk;
  return response;
}

TEST(SchedulerTest, QueueFullRejectsWithReason) {
  RequestScheduler scheduler(small_scheduler(2),
                             [](const Request&, ExecContext&) {
                               return ok_response();
                             });
  scheduler.pause();
  std::vector<Ticket> admitted;
  Ticket rejected;
  for (int i = 0; i < 8; ++i) {
    Ticket ticket = scheduler.submit(count_request(share(gen::cycle(3).edges)));
    if (ticket.done() && ticket.wait().status == Status::kRejectedQueueFull) {
      rejected = ticket;
    } else {
      admitted.push_back(ticket);
    }
  }
  ASSERT_TRUE(rejected.valid());
  EXPECT_EQ(rejected.wait().status, Status::kRejectedQueueFull);
  EXPECT_NE(rejected.wait().reason.find("queue full"), std::string::npos);
  EXPECT_EQ(admitted.size(), 2u);
  scheduler.resume();
  for (const Ticket& ticket : admitted) {
    EXPECT_EQ(ticket.wait().status, Status::kOk);
  }
}

TEST(SchedulerTest, DeadlineExpiredAtDequeue) {
  RequestScheduler scheduler(small_scheduler(4),
                             [](const Request&, ExecContext&) {
                               return ok_response();
                             });
  scheduler.pause();
  Request request = count_request(share(gen::cycle(3).edges));
  request.deadline_ms = 0.01;
  Ticket expiring = scheduler.submit(request);
  Ticket healthy = scheduler.submit(count_request(share(gen::cycle(3).edges)));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  scheduler.resume();
  EXPECT_EQ(expiring.wait().status, Status::kDeadlineExpired);
  EXPECT_GE(expiring.wait().queue_ms, 0.01);
  EXPECT_EQ(healthy.wait().status, Status::kOk);
}

TEST(SchedulerTest, CancelledWhileQueuedNeverExecutes) {
  std::atomic<int> executed{0};
  RequestScheduler scheduler(small_scheduler(4),
                             [&](const Request&, ExecContext&) {
                               executed.fetch_add(1);
                               return ok_response();
                             });
  scheduler.pause();
  Ticket keep = scheduler.submit(count_request(share(gen::cycle(3).edges)));
  Ticket dropped = scheduler.submit(count_request(share(gen::cycle(3).edges)));
  EXPECT_TRUE(dropped.cancel());
  scheduler.resume();
  EXPECT_EQ(dropped.wait().status, Status::kCancelled);
  EXPECT_EQ(keep.wait().status, Status::kOk);
  EXPECT_EQ(executed.load(), 1);
}

TEST(SchedulerTest, PriorityOrdersExecution) {
  std::mutex mutex;
  std::vector<Priority> order;
  RequestScheduler scheduler(small_scheduler(8),
                             [&](const Request& request, ExecContext&) {
                               std::lock_guard lock(mutex);
                               order.push_back(request.priority);
                               return ok_response();
                             });
  scheduler.pause();
  std::vector<Ticket> tickets;
  for (const Priority priority :
       {Priority::kLow, Priority::kNormal, Priority::kHigh, Priority::kNormal}) {
    Request request = count_request(share(gen::cycle(3).edges));
    request.priority = priority;
    tickets.push_back(scheduler.submit(request));
  }
  scheduler.resume();
  for (const Ticket& ticket : tickets) (void)ticket.wait();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], Priority::kHigh);
  EXPECT_EQ(order[1], Priority::kNormal);
  EXPECT_EQ(order[2], Priority::kNormal);
  EXPECT_EQ(order[3], Priority::kLow);
}

TEST(SchedulerTest, WorkExceptionBecomesFailedResponse) {
  RequestScheduler scheduler(small_scheduler(4),
                             [](const Request&, ExecContext&) -> Response {
                               throw std::runtime_error("backend exploded");
                             });
  const Response response =
      scheduler.submit(count_request(share(gen::cycle(3).edges))).wait();
  EXPECT_EQ(response.status, Status::kFailed);
  EXPECT_NE(response.reason.find("backend exploded"), std::string::npos);
}

TEST(SchedulerTest, DestructorDrainsAdmittedRequests) {
  std::atomic<int> executed{0};
  std::vector<Ticket> tickets;
  {
    RequestScheduler scheduler(small_scheduler(16),
                               [&](const Request&, ExecContext&) {
                                 executed.fetch_add(1);
                                 return ok_response();
                               });
    scheduler.pause();
    for (int i = 0; i < 6; ++i) {
      tickets.push_back(
          scheduler.submit(count_request(share(gen::cycle(3).edges))));
    }
    scheduler.resume();
  }  // destructor joins after draining
  EXPECT_EQ(executed.load(), 6);
  for (const Ticket& ticket : tickets) {
    EXPECT_EQ(ticket.wait().status, Status::kOk);
  }
}

// ---------------------------------------------------------------------------
// TriangleService end-to-end

ServiceOptions quiet_service(std::size_t workers = 2,
                             std::size_t capacity = 256) {
  ServiceOptions options;
  options.scheduler.workers = workers;
  options.scheduler.queue_capacity = capacity;
  return options;
}

TEST(ServiceTest, ExactCountOnEveryExplicitBackend) {
  TriangleService service(quiet_service(1));
  const gen::ReferenceGraph reference = gen::windmill(5, 4);
  const auto graph = share(reference.edges);
  for (const Backend backend : {Backend::kCpuHybrid, Backend::kGpu,
                                Backend::kMultiGpu, Backend::kOutOfCore}) {
    const Response response = service.execute(count_request(graph, backend));
    ASSERT_EQ(response.status, Status::kOk) << to_string(backend)
                                            << ": " << response.reason;
    EXPECT_EQ(response.triangles, reference.expected_triangles)
        << to_string(backend);
    EXPECT_EQ(response.backend, backend);
  }
  // Device tiers report modeled time; every request after the first hit.
  const MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.completed, 4u);
  EXPECT_EQ(metrics.catalog.builds, 1u);
  EXPECT_GT(metrics.catalog.hit_rate(), 0.5);
}

TEST(ServiceTest, ClusteringAndTrussOperations) {
  TriangleService service(quiet_service(1));
  const auto k5 = share(gen::complete(5).edges);

  Request clustering = count_request(k5);
  clustering.op = Operation::kClustering;
  const Response c = service.execute(clustering);
  ASSERT_EQ(c.status, Status::kOk) << c.reason;
  EXPECT_DOUBLE_EQ(c.clustering, 1.0);    // K_5: every wedge closes
  EXPECT_DOUBLE_EQ(c.transitivity, 1.0);

  Request truss = count_request(k5);
  truss.op = Operation::kTruss;
  const Response t = service.execute(truss);
  ASSERT_EQ(t.status, Status::kOk) << t.reason;
  EXPECT_EQ(t.max_trussness, 5u);  // K_5 is a 5-truss
}

TEST(ServiceTest, FaultedGpuBackendFallsDownTheChain) {
  // A persistent kernel-launch fault defeats every rung of the pipeline's
  // internal ladder; the *service* chain then steps the request down to the
  // CPU tier and reports the degradation instead of failing the request.
  simt::FaultPlan plan;
  plan.inject({simt::FaultKind::kDeviceLost, simt::FaultSite::kKernel,
               /*device=*/0, /*occurrence=*/1, /*repeats=*/1000});
  ServiceOptions options = quiet_service(1);
  options.counting.fault_plan = &plan;
  options.counting.retry.max_attempts = 1;
  options.counting.retry.backoff_base_ms = 0;
  TriangleService service(options);

  const gen::ReferenceGraph reference = gen::complete(12);
  const Response response =
      service.execute(count_request(share(reference.edges), Backend::kGpu));
  ASSERT_EQ(response.status, Status::kOk) << response.reason;
  EXPECT_EQ(response.triangles, reference.expected_triangles);
  EXPECT_NE(response.backend, Backend::kGpu);
  EXPECT_TRUE(response.degraded);
  EXPECT_NE(response.reason.find("fell back"), std::string::npos);
  EXPECT_GE(service.metrics().fallbacks, 1u);
}

TEST(ServiceTest, ConcurrentClientsGetExactCounts) {
  // The acceptance workload: >= 8 client threads, >= 3 distinct graphs,
  // 1000 requests total, every count checked against its closed form.
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 125;

  const std::vector<gen::ReferenceGraph> references = {
      gen::complete(16), gen::windmill(5, 6), gen::clique_ring(6, 5),
      gen::disjoint_triangles(40)};
  std::vector<std::shared_ptr<const EdgeList>> graphs;
  graphs.reserve(references.size());
  for (const auto& reference : references) graphs.push_back(share(reference.edges));

  TriangleService service(quiet_service(2, 64));
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const std::size_t g =
            static_cast<std::size_t>(c + i) % references.size();
        Request request = count_request(graphs[g]);
        // Mix explicit CPU picks into the auto-routed stream.
        if (i % 3 == 0) request.backend = Backend::kCpuHybrid;
        const Response response = service.execute(std::move(request));
        if (response.status != Status::kOk) {
          failures.fetch_add(1);
        } else if (response.triangles != references[g].expected_triangles) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  const MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.submitted, static_cast<std::uint64_t>(kClients) *
                                   kRequestsPerClient);
  EXPECT_EQ(metrics.completed, metrics.submitted);
  EXPECT_EQ(metrics.catalog.builds, references.size());
  EXPECT_GT(metrics.catalog.hit_rate(), 0.9);
  EXPECT_EQ(metrics.queue_depth, 0u);
}

TEST(ServiceTest, MemoizedResultServesRepeatAutoQueries) {
  TriangleService service(quiet_service(1));
  const gen::ReferenceGraph reference = gen::clique_ring(5, 4);
  const auto graph = share(reference.edges);
  const Response first = service.execute(count_request(graph));
  const Response second = service.execute(count_request(graph));
  ASSERT_EQ(first.status, Status::kOk);
  ASSERT_EQ(second.status, Status::kOk);
  EXPECT_EQ(first.triangles, reference.expected_triangles);
  EXPECT_EQ(second.triangles, reference.expected_triangles);
  EXPECT_TRUE(second.catalog_hit);
  EXPECT_GE(service.metrics().catalog.result_hits, 1u);

  // An explicit-backend repeat must run its tier, not the memo.
  const Response explicit_gpu =
      service.execute(count_request(graph, Backend::kGpu));
  ASSERT_EQ(explicit_gpu.status, Status::kOk);
  EXPECT_EQ(explicit_gpu.backend, Backend::kGpu);
  EXPECT_GE(explicit_gpu.modeled_device_ms, 0.0);
}

TEST(ServiceTest, ResultCacheCanBeDisabled) {
  ServiceOptions options = quiet_service(1);
  options.catalog.cache_results = false;
  TriangleService service(options);
  const auto graph = share(gen::complete(12).edges);
  (void)service.execute(count_request(graph));
  (void)service.execute(count_request(graph));
  EXPECT_EQ(service.metrics().catalog.result_hits, 0u);
  EXPECT_EQ(service.metrics().catalog.hits, 1u);  // artifacts still shared
}

TEST(ServiceTest, MetricsSnapshotIsConsistent) {
  TriangleService service(quiet_service(1));
  const auto graph = share(gen::complete(10).edges);
  for (int i = 0; i < 5; ++i) {
    (void)service.execute(count_request(graph, Backend::kCpuHybrid));
  }
  const MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.submitted, 5u);
  EXPECT_EQ(metrics.completed, 5u);
  EXPECT_EQ(metrics.served_by_backend[static_cast<std::size_t>(
                Backend::kCpuHybrid)],
            5u);
  EXPECT_EQ(metrics.total_latency.count, 5u);
  EXPECT_GE(metrics.total_latency.mean_ms(), 0.0);
  EXPECT_FALSE(metrics.to_string().empty());
}

// ---------------------------------------------------------------------------
// Bench-cache reuse: served through the catalog's file loader when the
// prebuilt graphs exist (they are built by any suite bench run).

TEST(ServiceTest, ServesPrebuiltBenchCacheGraph) {
  const char* candidates[] = {"trico_bench_cache", "../trico_bench_cache",
                              "../../trico_bench_cache"};
  std::string found;
  for (const char* dir : candidates) {
    if (std::filesystem::exists(std::filesystem::path(dir) /
                                "kronecker-16.trico")) {
      found = dir;
      break;
    }
  }
  if (found.empty()) {
    GTEST_SKIP() << "trico_bench_cache not present; run a suite bench first";
  }
  const auto graph = share(
      GraphCatalog::load_graph_file(found + "/kronecker-16.trico"));
  TriangleService service(quiet_service(1));
  const Response first = service.execute(count_request(graph));
  const Response second = service.execute(count_request(graph));
  ASSERT_EQ(first.status, Status::kOk) << first.reason;
  ASSERT_EQ(second.status, Status::kOk) << second.reason;
  EXPECT_EQ(first.triangles, second.triangles);
  EXPECT_GT(first.triangles, 0u);
  EXPECT_FALSE(first.catalog_hit);
  EXPECT_TRUE(second.catalog_hit);
}

}  // namespace
}  // namespace trico::service
