// Zero-copy persistent graph store (src/store/, docs/storage.md).
//
// The two properties everything here defends:
//   1. Bit-identical serving: counts AND CountingStats over an mmapped
//      artifact equal the owned PreparedGraph's, at every ISA level and
//      thread count.
//   2. Typed failure: a corrupt, truncated, stale or torn artifact is a
//      diagnosable StoreError (and, through the store, a clean miss) —
//      never a wrong count, never a crash.
//
// Suite names carry Store/Mmap so the CI TSan job's regex picks them up.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "cpu/counting.hpp"
#include "cpu/hybrid_engine.hpp"
#include "gen/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "outofcore/counter.hpp"
#include "prim/thread_pool.hpp"
#include "service/catalog.hpp"
#include "simt/device_config.hpp"
#include "store/artifact.hpp"
#include "store/format.hpp"
#include "store/ingest.hpp"
#include "store/store.hpp"

namespace trico {
namespace {

namespace fs = std::filesystem;

/// The fork/SIGKILL test cannot run under TSan (the runtime does not
/// survive fork-without-exec).
#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

/// Per-test scratch directory under the build tree (never /tmp: the repo's
/// tests stay inside the checkout).
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_("store_test_scratch_" + name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string file(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

EdgeList test_graph(unsigned scale = 9, std::uint64_t seed = 7) {
  gen::RmatParams params;
  params.scale = scale;
  params.edge_factor = 8;
  return gen::rmat(params, seed);
}

/// Flips one byte of a file in place.
void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

void patch_u32(const std::string& path, std::uint64_t offset,
               std::uint32_t value) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f) << path;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

store::StoreErrorKind open_kind(const std::string& path) {
  try {
    (void)store::open_prepared_artifact(path);
  } catch (const store::StoreError& error) {
    return error.kind();
  }
  ADD_FAILURE() << path << ": open unexpectedly succeeded";
  return store::StoreErrorKind::kIo;
}

// -- artifact format: round trip + corruption matrix -----------------------

TEST(MmapArtifactTest, RoundTripServesIdenticalView) {
  ScratchDir dir("roundtrip");
  prim::ThreadPool pool(2);
  const EdgeList graph = test_graph();
  const GraphStats stats = compute_stats(graph);
  const cpu::PreparedGraph prepared = cpu::prepare(graph, pool);
  const std::string path = dir.file("g.tpg");
  const std::uint64_t size =
      store::write_prepared_artifact(path, 42, prepared, stats);
  EXPECT_EQ(size, fs::file_size(path));

  const auto mapped = store::open_prepared_artifact(path);
  EXPECT_EQ(mapped->content_key(), 42u);
  EXPECT_EQ(mapped->mapped_bytes(), size);
  const GraphStats& restored = mapped->graph_stats();
  EXPECT_EQ(restored.num_vertices, stats.num_vertices);
  EXPECT_EQ(restored.num_edges, stats.num_edges);
  EXPECT_EQ(restored.max_degree, stats.max_degree);
  EXPECT_DOUBLE_EQ(restored.avg_degree, stats.avg_degree);

  const cpu::PreparedGraphView owned = prepared.view();
  const cpu::PreparedGraphView& disk = mapped->view();
  ASSERT_EQ(disk.offsets.size(), owned.offsets.size());
  EXPECT_TRUE(std::equal(disk.offsets.begin(), disk.offsets.end(),
                         owned.offsets.begin()));
  ASSERT_EQ(disk.neighbors.size(), owned.neighbors.size());
  EXPECT_TRUE(std::equal(disk.neighbors.begin(), disk.neighbors.end(),
                         owned.neighbors.begin()));
  ASSERT_EQ(disk.bitmap_words.size(), owned.bitmap_words.size());
  EXPECT_TRUE(std::equal(disk.bitmap_words.begin(), disk.bitmap_words.end(),
                         owned.bitmap_words.begin()));
}

TEST(MmapArtifactTest, MissingFileIsNotFound) {
  ScratchDir dir("missing");
  EXPECT_EQ(open_kind(dir.file("absent.tpg")),
            store::StoreErrorKind::kNotFound);
}

TEST(MmapArtifactTest, CorruptionMatrixYieldsTypedErrors) {
  ScratchDir dir("corrupt");
  prim::ThreadPool pool(2);
  const EdgeList graph = test_graph();
  const cpu::PreparedGraph prepared = cpu::prepare(graph, pool);
  const std::string golden = dir.file("golden.tpg");
  store::write_prepared_artifact(golden, 1, prepared, compute_stats(graph));
  const std::uint64_t size = fs::file_size(golden);

  const auto fresh = [&](const std::string& name) {
    const std::string path = dir.file(name);
    fs::copy_file(golden, path, fs::copy_options::overwrite_existing);
    return path;
  };

  {  // wrong magic
    const std::string path = fresh("magic.tpg");
    flip_byte(path, 0);
    EXPECT_EQ(open_kind(path), store::StoreErrorKind::kMagic);
  }
  {  // stale format version (header checksum patched to stay valid is not
     // attempted — version is checked before the checksum would reject it)
    const std::string path = fresh("version.tpg");
    patch_u32(path, 8, store::kArtifactVersion + 1);
    EXPECT_EQ(open_kind(path), store::StoreErrorKind::kVersion);
  }
  {  // foreign endianness
    const std::string path = fresh("endian.tpg");
    patch_u32(path, 12, 0x04030201u);
    EXPECT_EQ(open_kind(path), store::StoreErrorKind::kVersion);
  }
  {  // flipped byte inside the header (after the tags it guards): the
     // header self-checksum rejects before the counts drive any layout math
    const std::string path = fresh("header.tpg");
    flip_byte(path, 40);  // num_offsets field
    EXPECT_EQ(open_kind(path), store::StoreErrorKind::kChecksum);
  }
  {  // flipped byte in the payload: caught by the payload checksum
    const std::string path = fresh("payload.tpg");
    flip_byte(path, sizeof(store::ArtifactHeader) + 1000);
    EXPECT_EQ(open_kind(path), store::StoreErrorKind::kChecksum);
  }
  {  // truncated mid-payload
    const std::string path = fresh("trunc.tpg");
    fs::resize_file(path, size / 2);
    EXPECT_EQ(open_kind(path), store::StoreErrorKind::kTruncated);
  }
  {  // truncated inside the header
    const std::string path = fresh("stub.tpg");
    fs::resize_file(path, 100);
    EXPECT_EQ(open_kind(path), store::StoreErrorKind::kTruncated);
  }
  {  // trailing garbage: size no longer matches the declared layout
    const std::string path = fresh("tail.tpg");
    std::ofstream(path, std::ios::app | std::ios::binary) << "xxxxxxxx";
    EXPECT_EQ(open_kind(path), store::StoreErrorKind::kCorrupt);
  }
  {  // a different graph under the expected key (renamed/rewired file)
    const std::string path = fresh("rewired.tpg");
    store::OpenOptions options;
    options.expected_key = 999;
    EXPECT_THROW(
        {
          try {
            (void)store::open_prepared_artifact(path, options);
          } catch (const store::StoreError& error) {
            EXPECT_EQ(error.kind(), store::StoreErrorKind::kCorrupt);
            throw;
          }
        },
        store::StoreError);
  }
  // The golden copy still opens after all of the above.
  EXPECT_NO_THROW((void)store::open_prepared_artifact(golden));
}

// -- bit-identical counting over owned vs mapped views ---------------------

TEST(MmapParityTest, CountsAndStatsIdenticalAcrossIsaAndThreads) {
  ScratchDir dir("parity");
  const EdgeList graph = test_graph(10);
  const TriangleCount expected = cpu::count_forward(graph);

  const cpu::simd::IsaRequest requests[] = {
      cpu::simd::IsaRequest::kScalar, cpu::simd::IsaRequest::kSse42,
      cpu::simd::IsaRequest::kAvx2, cpu::simd::IsaRequest::kAuto};
  for (const auto isa : requests) {
    cpu::EngineOptions options;
    options.isa = isa;
    prim::ThreadPool build_pool(2);
    const cpu::PreparedGraph prepared = cpu::prepare(graph, build_pool, options);
    const std::string path =
        dir.file("isa" + std::to_string(static_cast<int>(isa)) + ".tpg");
    store::write_prepared_artifact(path, 1, prepared, compute_stats(graph));
    const auto mapped = store::open_prepared_artifact(path);

    for (const std::size_t threads : {1u, 2u, 4u}) {
      prim::ThreadPool pool(threads);
      cpu::CountingStats owned_stats, mapped_stats;
      const TriangleCount owned_count =
          cpu::count_prepared(prepared, pool, &owned_stats);
      const TriangleCount mapped_count =
          cpu::count_prepared(mapped->view(), pool, &mapped_stats);
      EXPECT_EQ(owned_count, expected)
          << "isa=" << static_cast<int>(isa) << " threads=" << threads;
      EXPECT_EQ(mapped_count, owned_count)
          << "isa=" << static_cast<int>(isa) << " threads=" << threads;
      EXPECT_EQ(mapped_stats.merge_edges, owned_stats.merge_edges);
      EXPECT_EQ(mapped_stats.gallop_edges, owned_stats.gallop_edges);
      EXPECT_EQ(mapped_stats.bitmap_edges, owned_stats.bitmap_edges);
      EXPECT_EQ(mapped_stats.isa, owned_stats.isa);
    }
  }
}

TEST(MmapParityTest, EmptyAndBitmaplessGraphsRoundTrip) {
  ScratchDir dir("shapes");
  prim::ThreadPool pool(2);
  // No-bitmap configuration (threshold 0 disables rows) and a triangle-free
  // shape: exercises the all-sections-optional side of the layout.
  cpu::EngineOptions options;
  options.bitmap_threshold = 0;
  options.relabel_by_degree = false;
  std::vector<Edge> pairs;
  for (VertexId v = 0; v < 63; ++v) pairs.push_back(Edge{v, v + 1});
  const EdgeList path_graph = EdgeList::from_undirected_pairs(pairs, 64);
  const cpu::PreparedGraph prepared = cpu::prepare(path_graph, pool, options);
  const std::string file = dir.file("path.tpg");
  store::write_prepared_artifact(file, 5, prepared, compute_stats(path_graph));
  const auto mapped = store::open_prepared_artifact(file);
  EXPECT_EQ(cpu::count_prepared(mapped->view(), pool), 0u);
  EXPECT_EQ(cpu::count_prepared(mapped->view(), pool),
            cpu::count_prepared(prepared, pool));
}

// -- parallel chunked ingest ------------------------------------------------

TEST(StoreIngestTest, ParallelReadMatchesSerialLoader) {
  ScratchDir dir("ingest");
  const EdgeList graph = test_graph(10);
  const std::string path = dir.file("g.trico");
  io::write_binary_file(path, graph);
  const EdgeList serial = io::read_binary_file(path);

  for (const std::size_t chunk : {64u, 4096u, 1u << 20}) {
    prim::ThreadPool pool(4);
    store::IngestOptions options;
    options.chunk_bytes = chunk;
    const EdgeList parallel = store::read_edges_parallel(path, pool, options);
    ASSERT_EQ(parallel.num_vertices(), serial.num_vertices())
        << "chunk=" << chunk;
    ASSERT_EQ(parallel.num_edge_slots(), serial.num_edge_slots());
    EXPECT_TRUE(std::equal(parallel.edges().begin(), parallel.edges().end(),
                           serial.edges().begin(),
                           [](const Edge& a, const Edge& b) {
                             return a.u == b.u && a.v == b.v;
                           }))
        << "chunk=" << chunk;
  }
}

TEST(StoreIngestTest, DirectIoFallsBackAndMatches) {
  ScratchDir dir("direct");
  const EdgeList graph = test_graph();
  const std::string path = dir.file("g.trico");
  io::write_binary_file(path, graph);
  prim::ThreadPool pool(2);
  store::IngestOptions options;
  options.direct_io = true;  // tmpfs/overlayfs may reject O_DIRECT: must
  options.chunk_bytes = 1 << 16;  // transparently fall back, same bytes
  const EdgeList loaded = store::read_edges_parallel(path, pool, options);
  EXPECT_EQ(loaded.num_edge_slots(), graph.num_edge_slots());
  EXPECT_TRUE(std::equal(loaded.edges().begin(), loaded.edges().end(),
                         graph.edges().begin(),
                         [](const Edge& a, const Edge& b) {
                           return a.u == b.u && a.v == b.v;
                         }));
}

TEST(StoreIngestTest, RejectsOutOfRangeVertexIds) {
  ScratchDir dir("badid");
  const EdgeList graph = test_graph();
  const std::string path = dir.file("g.trico");
  io::write_binary_file(path, graph);
  // Corrupt one vertex id past the header's declared count.
  patch_u32(path, io::kBinaryHeaderBytes + 16, 0x7fffffffu);
  prim::ThreadPool pool(2);
  EXPECT_THROW((void)store::read_edges_parallel(path, pool), io::IoError);
  // The serial loader trusts the payload; the parallel one validates.
  store::IngestOptions trusting;
  trusting.validate = false;
  EXPECT_NO_THROW((void)store::read_edges_parallel(path, pool, trusting));
}

TEST(StoreIngestTest, RejectsTruncatedFiles) {
  ScratchDir dir("trunc");
  const EdgeList graph = test_graph();
  const std::string path = dir.file("g.trico");
  io::write_binary_file(path, graph);
  fs::resize_file(path, fs::file_size(path) - 4);
  prim::ThreadPool pool(2);
  EXPECT_THROW((void)store::read_edges_parallel(path, pool), io::IoError);
  fs::resize_file(path, 10);  // shorter than the header
  EXPECT_THROW((void)store::read_edges_parallel(path, pool), io::IoError);
}

// -- the artifact store -----------------------------------------------------

TEST(ArtifactStoreTest, DisabledStoreIsANoOp) {
  store::ArtifactStore store;
  EXPECT_FALSE(store.enabled());
  EXPECT_EQ(store.find(1), nullptr);
  prim::ThreadPool pool(1);
  EXPECT_FALSE(store.load_edges(1, pool).has_value());
  EXPECT_FALSE(store.stats().enabled);
}

TEST(ArtifactStoreTest, PublishThenFindRoundTrips) {
  ScratchDir dir("pubfind");
  prim::ThreadPool pool(2);
  const EdgeList graph = test_graph();
  const std::uint64_t key = store::edge_list_key(graph);
  const cpu::PreparedGraph prepared = cpu::prepare(graph, pool);

  store::StoreOptions options;
  options.root = dir.path();
  store::ArtifactStore store(options);
  EXPECT_EQ(store.find(key), nullptr);  // miss before publish

  const auto published = store.publish(key, prepared, compute_stats(graph));
  ASSERT_NE(published, nullptr);
  const auto found = store.find(key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->content_key(), key);
  EXPECT_EQ(cpu::count_prepared(found->view(), pool),
            cpu::count_prepared(prepared, pool));

  const store::StoreStats stats = store.stats();
  EXPECT_EQ(stats.publishes, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.mapped_artifacts, 1u);
  EXPECT_GT(stats.bytes_mapped, 0u);

  // A second store over the same root — the restarted process — serves the
  // artifact from disk.
  store::ArtifactStore restarted(options);
  const auto warm = restarted.find(key);
  ASSERT_NE(warm, nullptr);
  EXPECT_EQ(cpu::count_prepared(warm->view(), pool),
            cpu::count_prepared(prepared, pool));
}

TEST(ArtifactStoreTest, CorruptArtifactIsQuarantinedAsMiss) {
  ScratchDir dir("quarantine");
  prim::ThreadPool pool(2);
  const EdgeList graph = test_graph();
  const std::uint64_t key = store::edge_list_key(graph);
  const cpu::PreparedGraph prepared = cpu::prepare(graph, pool);

  store::StoreOptions options;
  options.root = dir.path();
  {
    store::ArtifactStore store(options);
    ASSERT_NE(store.publish(key, prepared, compute_stats(graph)), nullptr);
  }
  // Flip a payload byte on disk; the restarted store must reject, never
  // serve a wrong count.
  store::ArtifactStore store(options);
  flip_byte(store.prepared_path(key), sizeof(store::ArtifactHeader) + 64);
  EXPECT_EQ(store.find(key), nullptr);
  EXPECT_EQ(store.stats().corrupt_rejects, 1u);
  // The bad file was moved aside: the next find is a clean miss, and a
  // re-publish recovers.
  EXPECT_FALSE(fs::exists(store.prepared_path(key)));
  EXPECT_EQ(store.find(key), nullptr);
  ASSERT_NE(store.publish(key, prepared, compute_stats(graph)), nullptr);
  EXPECT_NE(store.find(key), nullptr);
}

TEST(ArtifactStoreTest, LruEvictsUnpinnedMappingsToBudget) {
  ScratchDir dir("lru");
  prim::ThreadPool pool(2);
  store::StoreOptions options;
  options.root = dir.path();
  options.mapped_byte_budget = 1;  // evict everything not pinned
  store::ArtifactStore store(options);

  const EdgeList a = test_graph(9, 1), b = test_graph(9, 2);
  const std::uint64_t key_a = store::edge_list_key(a);
  const std::uint64_t key_b = store::edge_list_key(b);
  {
    // Publish returns a pin; release it so the LRU may evict `a` when the
    // next publish overflows the (1-byte) budget.
    auto pin_a = store.publish(key_a, cpu::prepare(a, pool), compute_stats(a));
    ASSERT_NE(pin_a, nullptr);
  }
  const auto pin_b =
      store.publish(key_b, cpu::prepare(b, pool), compute_stats(b));
  ASSERT_NE(pin_b, nullptr);
  EXPECT_GT(store.stats().evictions, 0u);
  // `b` itself is over budget but pinned — eviction must not touch it.
  EXPECT_EQ(store.stats().mapped_artifacts, 1u);
  // The evicted mapping reloads from disk on demand.
  const auto back = store.find(key_a);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->content_key(), key_a);
}

TEST(ArtifactStoreTest, PinnedMappingSurvivesEviction) {
  ScratchDir dir("pinned");
  prim::ThreadPool pool(2);
  store::StoreOptions options;
  options.root = dir.path();
  options.mapped_byte_budget = 1;
  store::ArtifactStore store(options);

  const EdgeList a = test_graph(9, 1);
  const std::uint64_t key = store::edge_list_key(a);
  const cpu::PreparedGraph prepared = cpu::prepare(a, pool);
  const auto pinned = store.publish(key, prepared, compute_stats(a));
  ASSERT_NE(pinned, nullptr);
  // Publishing another artifact triggers eviction pressure, but the pinned
  // mapping must stay valid (shared_ptr holds it).
  const EdgeList b = test_graph(9, 2);
  {
    auto other = store.publish(store::edge_list_key(b), cpu::prepare(b, pool),
                               compute_stats(b));
  }
  EXPECT_EQ(cpu::count_prepared(pinned->view(), pool),
            cpu::count_prepared(prepared, pool));
}

TEST(ArtifactStoreTest, ConcurrentOpenWhilePublishNeverServesTornState) {
  ScratchDir dir("race");
  prim::ThreadPool pool(2);
  const EdgeList graph = test_graph();
  const std::uint64_t key = store::edge_list_key(graph);
  const cpu::PreparedGraph prepared = cpu::prepare(graph, pool);
  const GraphStats stats = compute_stats(graph);
  const TriangleCount expected = cpu::count_prepared(prepared, pool);

  store::StoreOptions options;
  options.root = dir.path();
  store::ArtifactStore store(options);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      prim::ThreadPool reader_pool(1);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto mapped = store.find(key);
        if (mapped == nullptr) continue;
        ASSERT_EQ(cpu::count_prepared(mapped->view(), reader_pool), expected);
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_NE(store.publish(key, prepared, stats), nullptr);
  }
  // Let the readers observe the final published state at least once.
  while (served.load(std::memory_order_relaxed) < 3) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_GT(served.load(), 0u);
}

TEST(ArtifactStoreTest, KilledPublisherNeverLeavesTornArtifact) {
  if (kTsan) GTEST_SKIP() << "fork without exec is unsupported under TSan";
  ScratchDir dir("killpub");
  prim::ThreadPool pool(2);
  const EdgeList graph = test_graph();
  const std::uint64_t key = store::edge_list_key(graph);
  const cpu::PreparedGraph prepared = cpu::prepare(graph, pool);
  const TriangleCount expected = cpu::count_prepared(prepared, pool);

  // Pre-serialize in the parent; the child only replays raw write+rename so
  // it never touches threads, pools, or the allocator in anger.
  const std::string golden = dir.file("golden.bin");
  store::write_prepared_artifact(golden, key, prepared, compute_stats(graph));
  std::vector<char> bytes(fs::file_size(golden));
  {
    std::ifstream in(golden, std::ios::binary);
    ASSERT_TRUE(in.read(bytes.data(), static_cast<std::streamoff>(bytes.size())));
  }
  fs::remove(golden);

  store::StoreOptions options;
  options.root = dir.path();
  const std::string final_path =
      store::ArtifactStore(options).prepared_path(key);

  for (int round = 0; round < 5; ++round) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: publish in a loop — chunked writes to a temp name, then
      // atomic rename — until SIGKILLed mid-flight.
      for (unsigned iter = 0;; ++iter) {
        const std::string tmp = final_path + ".tmp." +
                                std::to_string(::getpid()) + "." +
                                std::to_string(iter);
        const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
        if (fd < 0) ::_exit(1);
        std::size_t done = 0;
        while (done < bytes.size()) {
          const std::size_t take = std::min<std::size_t>(4096, bytes.size() - done);
          if (::write(fd, bytes.data() + done, take) < 0) ::_exit(1);
          done += take;
        }
        ::close(fd);
        if (::rename(tmp.c_str(), final_path.c_str()) != 0) ::_exit(1);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + round * 2));
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);

    // Restarted process: sweeps temp litter, then either misses cleanly or
    // serves a fully valid artifact — never a torn one.
    store::ArtifactStore restarted(options);
    for (const auto& entry : fs::directory_iterator(dir.path())) {
      EXPECT_EQ(entry.path().filename().string().find(".tmp."),
                std::string::npos)
          << "temp litter survived the sweep: " << entry.path();
    }
    const auto mapped = restarted.find(key);
    if (mapped != nullptr) {
      EXPECT_EQ(cpu::count_prepared(mapped->view(), pool), expected)
          << "round " << round;
    }
    EXPECT_EQ(restarted.stats().corrupt_rejects, 0u) << "round " << round;
    fs::remove(final_path);  // next round starts from a miss
  }
}

TEST(ArtifactStoreTest, EdgeSpillRoundTrips) {
  ScratchDir dir("spill");
  prim::ThreadPool pool(2);
  store::StoreOptions options;
  options.root = dir.path();
  store::ArtifactStore store(options);

  const EdgeList graph = test_graph();
  const std::uint64_t key = 0xabcdef;
  EXPECT_FALSE(store.load_edges(key, pool).has_value());
  ASSERT_TRUE(store.publish_edges(key, graph));
  const auto loaded = store.load_edges(key, pool);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_vertices(), graph.num_vertices());
  ASSERT_EQ(loaded->num_edge_slots(), graph.num_edge_slots());
  EXPECT_TRUE(std::equal(loaded->edges().begin(), loaded->edges().end(),
                         graph.edges().begin(),
                         [](const Edge& a, const Edge& b) {
                           return a.u == b.u && a.v == b.v;
                         }));
  EXPECT_EQ(store.stats().edge_publishes, 1u);
  EXPECT_EQ(store.stats().edge_hits, 1u);
}

// -- catalog integration: warm restart --------------------------------------

TEST(StoreCatalogTest, WarmRestartSkipsPreprocessing) {
  ScratchDir dir("restart");
  prim::ThreadPool pool(2);
  const auto graph = std::make_shared<const EdgeList>(test_graph());

  service::CatalogOptions options;
  options.store.root = dir.path();

  TriangleCount cold_count = 0;
  {
    service::GraphCatalog cold(options);
    const auto acquired = cold.acquire(graph, pool);
    EXPECT_FALSE(acquired.entry->from_store);
    EXPECT_EQ(cold.stats().builds, 1u);
    EXPECT_EQ(cold.stats().store.publishes, 1u);
    cold_count = cpu::count_prepared(acquired.entry->prepared_view, pool);
  }

  // The restarted service: same store root, fresh catalog.
  service::GraphCatalog warm(options);
  const auto acquired = warm.acquire(graph, pool);
  EXPECT_TRUE(acquired.entry->from_store);
  EXPECT_NE(acquired.entry->mapped, nullptr);
  const service::CatalogStats stats = warm.stats();
  EXPECT_EQ(stats.builds, 0u) << "warm restart must not re-preprocess";
  EXPECT_EQ(stats.store_loads, 1u);
  EXPECT_EQ(stats.store.hits, 1u);
  EXPECT_EQ(cpu::count_prepared(acquired.entry->prepared_view, pool),
            cold_count);

  // A second acquire of the same graph is a plain RAM hit.
  const auto again = warm.acquire(graph, pool);
  EXPECT_TRUE(again.hit);
  EXPECT_EQ(warm.stats().store_loads, 1u);
}

TEST(StoreCatalogTest, DisabledStoreKeepsColdSemantics) {
  prim::ThreadPool pool(2);
  const auto graph = std::make_shared<const EdgeList>(test_graph());
  service::GraphCatalog catalog;  // no store root
  const auto acquired = catalog.acquire(graph, pool);
  EXPECT_FALSE(acquired.entry->from_store);
  EXPECT_EQ(catalog.stats().builds, 1u);
  EXPECT_EQ(catalog.stats().store_loads, 0u);
  EXPECT_FALSE(catalog.stats().store.enabled);
}

TEST(StoreCatalogTest, OutOfCoreSpillTierReusesSubgraphs) {
  ScratchDir dir("oospill");
  store::StoreOptions options;
  options.root = dir.path();
  store::ArtifactStore store(options);

  const EdgeList graph = test_graph();
  const std::uint64_t key = store::edge_list_key(graph);
  simt::DeviceConfig device = simt::DeviceConfig::gtx_980();

  outofcore::OutOfCoreCounter first(device, 3);
  first.set_spill(&store, key);
  const outofcore::OutOfCoreResult cold = first.count(graph);
  EXPECT_EQ(cold.spill_hits, 0u);
  EXPECT_GT(cold.spill_stores, 0u);

  outofcore::OutOfCoreCounter second(device, 3);
  second.set_spill(&store, key);
  const outofcore::OutOfCoreResult warm = second.count(graph);
  EXPECT_EQ(warm.triangles, cold.triangles);
  EXPECT_EQ(warm.spill_hits, cold.spill_stores);
  EXPECT_EQ(warm.spill_stores, 0u);

  // A different seed keys different tasks — no stale reuse.
  outofcore::OutOfCoreCounter reseeded(device, 3);
  reseeded.set_spill(&store, key);
  const outofcore::OutOfCoreResult other = reseeded.count(graph, 2);
  EXPECT_EQ(other.spill_hits, 0u);
  // And without a store attached the counters stay silent.
  outofcore::OutOfCoreCounter plain(device, 3);
  const outofcore::OutOfCoreResult bare = plain.count(graph);
  EXPECT_EQ(bare.triangles, cold.triangles);
  EXPECT_EQ(bare.spill_hits + bare.spill_stores, 0u);
}

// -- checksum building blocks ----------------------------------------------

TEST(StoreFormatTest, StreamFoldMatchesFlatFold) {
  std::vector<std::uint8_t> data(4096 + 64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  const std::uint64_t flat = store::fnv1a_words(data.data(), data.size() & ~7ull);
  // Feed in awkward slices, including sub-word ones.
  store::ChecksumStream stream;
  std::size_t fed = 0;
  const std::size_t total = data.size() & ~7ull;
  const std::size_t slices[] = {1, 3, 8, 64, 129, 1024};
  std::size_t s = 0;
  while (fed < total) {
    const std::size_t take = std::min(slices[s++ % 6], total - fed);
    stream.feed(data.data() + fed, take);
    fed += take;
  }
  EXPECT_EQ(stream.finish(), flat);

  // feed_zeros equals feeding literal zero bytes.
  store::ChecksumStream a, b;
  a.feed(data.data(), 24);
  a.feed_zeros(40);
  const std::vector<std::uint8_t> zeros(40, 0);
  b.feed(data.data(), 24);
  b.feed(zeros.data(), zeros.size());
  EXPECT_EQ(a.finish(), b.finish());
}

TEST(StoreFormatTest, FoldDetectsSingleFlippedByte) {
  std::vector<std::uint8_t> data(1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  const std::uint64_t clean = store::fnv1a_words(data.data(), data.size());
  for (const std::size_t at : {0u, 7u, 63u, 512u, 1023u}) {
    data[at] ^= 1;
    EXPECT_NE(store::fnv1a_words(data.data(), data.size()), clean) << at;
    data[at] ^= 1;
  }
  EXPECT_EQ(store::fnv1a_words(data.data(), data.size()), clean);
}

}  // namespace
}  // namespace trico
