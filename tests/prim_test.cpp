// Tests for the parallel primitives (the Thrust substitute): every primitive
// must agree with its sequential std:: counterpart for any thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "gen/rng.hpp"
#include "prim/algorithms.hpp"
#include "prim/radix_sort.hpp"
#include "prim/thread_pool.hpp"

namespace trico::prim {
namespace {

std::vector<std::uint64_t> random_u64(std::size_t n, std::uint64_t seed,
                                      std::uint64_t mask = ~0ull) {
  gen::Rng rng(seed);
  std::vector<std::uint64_t> values(n);
  for (auto& v : values) v = rng.next() & mask;
  return values;
}

/// All primitives are exercised with several pool widths, including 1
/// (sequential degenerate case) and more threads than hardware.
class PrimTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  ThreadPool pool_{GetParam()};
};

TEST_P(PrimTest, ParallelForCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool_, 0, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(PrimTest, ParallelForEmptyRange) {
  bool called = false;
  parallel_for(pool_, 5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST_P(PrimTest, ParallelForDynamicCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(4097);
  for (std::size_t chunk : {0u, 1u, 7u, 100000u}) {
    for (auto& h : hits) h.store(0);
    parallel_for_dynamic(pool_, 0, hits.size(), chunk,
                         [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "chunk " << chunk;
  }
}

TEST_P(PrimTest, ParallelForDynamicEmptyRange) {
  bool called = false;
  parallel_for_dynamic(pool_, 9, 9, 4, [&](std::size_t) { called = true; });
  parallel_for_dynamic(pool_, 9, 3, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST_P(PrimTest, ParallelChunksDynamicPartitionsTheRange) {
  std::vector<std::atomic<int>> hits(3001);
  parallel_chunks_dynamic(pool_, 0, hits.size(), 13,
                          [&](std::size_t, std::size_t lo, std::size_t hi) {
                            EXPECT_LE(hi - lo, 13u);
                            for (std::size_t i = lo; i < hi; ++i) {
                              hits[i].fetch_add(1);
                            }
                          });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(PrimTest, TransformReduceDynamicMatchesSequential) {
  const auto values = random_u64(12345, 9, 0xffff);
  const auto expected =
      std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  const auto got = transform_reduce_dynamic<std::uint64_t>(
      pool_, values.size(), 0, std::uint64_t{0},
      [&](std::size_t i) { return values[i]; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(got, expected);
}

TEST_P(PrimTest, ReduceSum) {
  const auto values = random_u64(10001, 1, 0xffff);
  const auto expected =
      std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  EXPECT_EQ(reduce<std::uint64_t>(pool_, values), expected);
}

TEST_P(PrimTest, ReduceMax) {
  const auto values = random_u64(5000, 2);
  const auto expected = *std::max_element(values.begin(), values.end());
  EXPECT_EQ(max_value<std::uint64_t>(pool_, values, 0), expected);
}

TEST_P(PrimTest, ReduceEmptyReturnsInit) {
  const std::vector<std::uint64_t> empty;
  EXPECT_EQ(reduce<std::uint64_t>(pool_, empty, 42), 42u);
}

TEST_P(PrimTest, TransformReduceMatchesLoop) {
  const std::size_t n = 3000;
  const auto result = transform_reduce<std::uint64_t>(
      pool_, n, 0, [](std::size_t i) { return i * i; });
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < n; ++i) expected += i * i;
  EXPECT_EQ(result, expected);
}

TEST_P(PrimTest, ExclusiveScanMatchesStd) {
  auto values = random_u64(4097, 3, 0xff);
  std::vector<std::uint64_t> expected(values.size());
  std::exclusive_scan(values.begin(), values.end(), expected.begin(),
                      std::uint64_t{7});
  std::vector<std::uint64_t> out(values.size());
  exclusive_scan<std::uint64_t>(pool_, values, out, 7);
  EXPECT_EQ(out, expected);
}

TEST_P(PrimTest, ExclusiveScanInPlaceAliasing) {
  auto values = random_u64(1000, 4, 0xff);
  std::vector<std::uint64_t> expected(values.size());
  std::exclusive_scan(values.begin(), values.end(), expected.begin(),
                      std::uint64_t{0});
  exclusive_scan<std::uint64_t>(pool_, values, values);
  EXPECT_EQ(values, expected);
}

TEST_P(PrimTest, InclusiveScanMatchesStd) {
  auto values = random_u64(2048, 5, 0xff);
  std::vector<std::uint64_t> expected(values.size());
  std::inclusive_scan(values.begin(), values.end(), expected.begin());
  std::vector<std::uint64_t> out(values.size());
  inclusive_scan<std::uint64_t>(pool_, values, out);
  EXPECT_EQ(out, expected);
}

TEST_P(PrimTest, TransformApplies) {
  const auto values = random_u64(513, 6, 0xffff);
  std::vector<std::uint64_t> out(values.size());
  transform<std::uint64_t, std::uint64_t>(
      pool_, values, out, [](std::uint64_t v) { return v * 2 + 1; });
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(out[i], values[i] * 2 + 1);
  }
}

TEST_P(PrimTest, RemoveIfFlaggedIsStable) {
  const auto values = random_u64(999, 7, 0xffff);
  std::vector<std::uint8_t> flags(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) flags[i] = (values[i] % 3 == 0);
  std::vector<std::uint64_t> expected;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!flags[i]) expected.push_back(values[i]);
  }
  const auto out = remove_if_flagged<std::uint64_t>(pool_, values, flags);
  EXPECT_EQ(out, expected);
}

TEST_P(PrimTest, RemoveIfAllFlagged) {
  const std::vector<std::uint64_t> values{1, 2, 3};
  const std::vector<std::uint8_t> flags{1, 1, 1};
  EXPECT_TRUE(remove_if_flagged<std::uint64_t>(pool_, values, flags).empty());
}

TEST_P(PrimTest, HistogramCountsKeys) {
  gen::Rng rng(8);
  std::vector<std::uint32_t> keys(5000);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.next_below(37));
  const auto bins = histogram(pool_, keys, 37);
  std::vector<std::uint64_t> expected(37, 0);
  for (auto k : keys) ++expected[k];
  EXPECT_EQ(bins, expected);
}

TEST_P(PrimTest, RadixSortU64MatchesStdSort) {
  auto values = random_u64(20000, 9);
  auto expected = values;
  std::sort(expected.begin(), expected.end());
  radix_sort_u64(pool_, values);
  EXPECT_EQ(values, expected);
}

TEST_P(PrimTest, RadixSortU64SmallKeysUsesFewerPasses) {
  auto values = random_u64(5000, 10, 0xffff);  // only 2 significant bytes
  auto expected = values;
  std::sort(expected.begin(), expected.end());
  radix_sort_u64(pool_, values);
  EXPECT_EQ(values, expected);
}

TEST_P(PrimTest, RadixSortU32MatchesStdSort) {
  gen::Rng rng(11);
  std::vector<std::uint32_t> values(10000);
  for (auto& v : values) v = static_cast<std::uint32_t>(rng.next());
  auto expected = values;
  std::sort(expected.begin(), expected.end());
  radix_sort_u32(pool_, values);
  EXPECT_EQ(values, expected);
}

TEST_P(PrimTest, RadixSortPairsCarriesValues) {
  gen::Rng rng(12);
  const std::size_t n = 4000;
  std::vector<std::uint64_t> keys(n);
  std::vector<std::uint32_t> vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng.next() & 0xffffff;
    vals[i] = static_cast<std::uint32_t>(i);
  }
  auto keys_copy = keys;
  radix_sort_pairs_u64(pool_, keys, vals);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(keys[i], keys_copy[vals[i]]) << "value must follow its key";
  }
}

TEST_P(PrimTest, RadixSortIsStable) {
  // Keys with many duplicates; values record original position. Stability
  // means equal keys keep ascending positions.
  gen::Rng rng(13);
  const std::size_t n = 3000;
  std::vector<std::uint64_t> keys(n);
  std::vector<std::uint32_t> vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng.next_below(7);
    vals[i] = static_cast<std::uint32_t>(i);
  }
  radix_sort_pairs_u64(pool_, keys, vals);
  for (std::size_t i = 1; i < n; ++i) {
    if (keys[i - 1] == keys[i]) EXPECT_LT(vals[i - 1], vals[i]);
  }
}

TEST_P(PrimTest, SortEdgesAsU64OrdersByFirstThenSecond) {
  gen::Rng rng(14);
  std::vector<Edge> edges(5000);
  for (auto& e : edges) {
    e.u = static_cast<VertexId>(rng.next_below(500));
    e.v = static_cast<VertexId>(rng.next_below(500));
  }
  auto expected = edges;
  std::sort(expected.begin(), expected.end());
  sort_edges_as_u64(pool_, edges);
  EXPECT_EQ(edges, expected);
}

TEST_P(PrimTest, SortEdgesAsU64LeOrdersBySecondThenFirst) {
  // The paper's §III-D2 caveat: the little-endian packing sorts by (v, u).
  gen::Rng rng(15);
  std::vector<Edge> edges(2000);
  for (auto& e : edges) {
    e.u = static_cast<VertexId>(rng.next_below(100));
    e.v = static_cast<VertexId>(rng.next_below(100));
  }
  sort_edges_as_u64_le(pool_, edges);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    const bool ordered = edges[i - 1].v != edges[i].v
                             ? edges[i - 1].v < edges[i].v
                             : edges[i - 1].u <= edges[i].u;
    EXPECT_TRUE(ordered);
  }
}

TEST_P(PrimTest, SortEdgesAsPairsMatchesStdSort) {
  gen::Rng rng(16);
  std::vector<Edge> edges(7777);
  for (auto& e : edges) {
    e.u = static_cast<VertexId>(rng.next());
    e.v = static_cast<VertexId>(rng.next());
  }
  auto expected = edges;
  std::sort(expected.begin(), expected.end());
  sort_edges_as_pairs(pool_, edges);
  EXPECT_EQ(edges, expected);
}

TEST_P(PrimTest, SortHandlesEmptyAndSingle) {
  std::vector<std::uint64_t> empty;
  radix_sort_u64(pool_, empty);
  std::vector<std::uint64_t> one{42};
  radix_sort_u64(pool_, one);
  EXPECT_EQ(one[0], 42u);
}

INSTANTIATE_TEST_SUITE_P(PoolWidths, PrimTest,
                         ::testing::Values<std::size_t>(1, 2, 3, 8),
                         [](const auto& info) {
                           return "threads_" + std::to_string(info.param);
                         });

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ParallelWorkersRunsEachSlotOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> slots(4);
  pool.parallel_workers([&](std::size_t w, std::size_t nw) {
    EXPECT_EQ(nw, 4u);
    slots[w].fetch_add(1);
  });
  for (const auto& s : slots) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPoolTest, ManySmallJobsDoNotDeadlock) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 200; ++round) {
    parallel_for(pool, 0, 10, [&](std::size_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 200u * 45u);
}

}  // namespace
}  // namespace trico::prim
