// Transport-layer tests: the wire protocol (framing, checksums, torn-frame
// detection), the in-process Server/Client round trip, idempotent retry
// under scripted wire chaos, and graceful drain. The invariant throughout
// matches the chaos contract one layer up: a client either gets the exact
// count or a typed error — never a wrong count, never a double execution,
// never a hang.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "gen/reference.hpp"
#include "service/chaos.hpp"
#include "service/service.hpp"
#include "transport/client.hpp"
#include "transport/server.hpp"
#include "transport/wire.hpp"
#include "util/io.hpp"

namespace trico::transport {
namespace {

std::shared_ptr<const EdgeList> share(EdgeList edges) {
  return std::make_shared<const EdgeList>(std::move(edges));
}

service::Request count_request(std::shared_ptr<const EdgeList> graph) {
  service::Request request;
  request.graph = std::move(graph);
  request.op = service::Operation::kCount;
  request.backend = service::Backend::kCpuHybrid;
  return request;
}

/// Service options kept light for socket tests.
service::ServiceOptions light_service() {
  service::ServiceOptions options;
  options.scheduler.workers = 2;
  return options;
}

// ---------------------------------------------------------------------------
// Wire codecs

TEST(WireTest, RequestSurvivesRoundTrip) {
  service::Request request;
  request.graph = share(gen::complete(9).edges);
  request.op = service::Operation::kClustering;
  request.backend = service::Backend::kGpu;
  request.objective = service::RouteObjective::kModeledDevice;
  request.priority = service::Priority::kHigh;
  request.deadline_ms = 1234.5;
  request.tenant_id = "tenant-42";

  const service::Request decoded = decode_request(encode_request(request));
  EXPECT_EQ(decoded.op, request.op);
  EXPECT_EQ(decoded.backend, request.backend);
  EXPECT_EQ(decoded.objective, request.objective);
  EXPECT_EQ(decoded.priority, request.priority);
  EXPECT_DOUBLE_EQ(decoded.deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded.tenant_id, request.tenant_id);
  ASSERT_NE(decoded.graph, nullptr);
  EXPECT_EQ(decoded.graph->num_vertices(), request.graph->num_vertices());
  ASSERT_EQ(decoded.graph->num_edge_slots(), request.graph->num_edge_slots());
  const auto a = request.graph->edges();
  const auto b = decoded.graph->edges();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].u, b[i].u);
    EXPECT_EQ(a[i].v, b[i].v);
  }
}

TEST(WireTest, ResponseSurvivesRoundTrip) {
  service::Response response;
  response.status = service::Status::kOk;
  response.reason = "fell back";
  response.triangles = 0x123456789abcull;
  response.clustering = 0.25;
  response.transitivity = 0.75;
  response.max_trussness = 7;
  response.backend = service::Backend::kOutOfCore;
  response.catalog_hit = true;
  response.degraded = true;
  response.modeled_device_ms = 3.5;
  response.queue_ms = 1.5;
  response.execute_ms = 9.0;

  const service::Response decoded = decode_response(encode_response(response));
  EXPECT_EQ(decoded.status, response.status);
  EXPECT_EQ(decoded.reason, response.reason);
  EXPECT_EQ(decoded.triangles, response.triangles);
  EXPECT_DOUBLE_EQ(decoded.clustering, response.clustering);
  EXPECT_DOUBLE_EQ(decoded.transitivity, response.transitivity);
  EXPECT_EQ(decoded.max_trussness, response.max_trussness);
  EXPECT_EQ(decoded.backend, response.backend);
  EXPECT_TRUE(decoded.catalog_hit);
  EXPECT_TRUE(decoded.degraded);
  EXPECT_DOUBLE_EQ(decoded.modeled_device_ms, response.modeled_device_ms);
  EXPECT_DOUBLE_EQ(decoded.queue_ms, response.queue_ms);
  EXPECT_DOUBLE_EQ(decoded.execute_ms, response.execute_ms);
}

TEST(WireTest, TruncatedPayloadThrowsNotReadsStale) {
  const std::vector<std::uint8_t> payload = encode_request(
      count_request(share(gen::complete(5).edges)));
  const std::span<const std::uint8_t> cut(payload.data(),
                                          payload.size() / 2);
  EXPECT_THROW((void)decode_request(cut), WireError);
}

/// Frame-level faults through a real socketpair.
class FramePipe : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) util::io::close_quiet(fds_[0]);
    if (fds_[1] >= 0) util::io::close_quiet(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FramePipe, FrameRoundTrip) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  send_frame(fds_[0], FrameType::kResponse, 77, payload, kFlagRetryable);
  Frame frame;
  ASSERT_TRUE(recv_frame(fds_[1], frame));
  EXPECT_EQ(frame.header.type, FrameType::kResponse);
  EXPECT_EQ(frame.header.request_id, 77u);
  EXPECT_EQ(frame.header.flags, kFlagRetryable);
  EXPECT_EQ(frame.payload, payload);
}

TEST_F(FramePipe, CleanCloseBetweenFramesIsFalse) {
  util::io::close_quiet(fds_[0]);
  fds_[0] = -1;
  Frame frame;
  EXPECT_FALSE(recv_frame(fds_[1], frame));
}

TEST_F(FramePipe, TornFrameThrowsTorn) {
  const std::vector<std::uint8_t> frame =
      build_frame(FrameType::kResponse, 1, std::vector<std::uint8_t>(100, 7));
  // A worker dying mid-send: half the frame, then the fd closes.
  ASSERT_EQ(util::io::write_full(fds_[0], frame.data(), frame.size() / 2)
                .status,
            util::io::IoStatus::kOk);
  util::io::close_quiet(fds_[0]);
  fds_[0] = -1;
  Frame out;
  try {
    (void)recv_frame(fds_[1], out);
    FAIL() << "torn frame not detected";
  } catch (const WireError& error) {
    EXPECT_EQ(error.fault(), WireFault::kTorn);
  }
}

TEST_F(FramePipe, DamagedPayloadThrowsChecksum) {
  std::vector<std::uint8_t> frame =
      build_frame(FrameType::kResponse, 1, std::vector<std::uint8_t>(64, 9));
  frame[kHeaderBytes + 10] ^= 0xff;  // damage one payload byte in flight
  ASSERT_EQ(util::io::write_full(fds_[0], frame.data(), frame.size()).status,
            util::io::IoStatus::kOk);
  Frame out;
  try {
    (void)recv_frame(fds_[1], out);
    FAIL() << "checksum mismatch not detected";
  } catch (const WireError& error) {
    EXPECT_EQ(error.fault(), WireFault::kChecksum);
  }
}

TEST_F(FramePipe, BadMagicThrowsProtocol) {
  std::vector<std::uint8_t> frame =
      build_frame(FrameType::kResponse, 1, std::vector<std::uint8_t>{});
  frame[0] ^= 0xff;
  ASSERT_EQ(util::io::write_full(fds_[0], frame.data(), frame.size()).status,
            util::io::IoStatus::kOk);
  Frame out;
  try {
    (void)recv_frame(fds_[1], out);
    FAIL() << "bad magic not detected";
  } catch (const WireError& error) {
    EXPECT_EQ(error.fault(), WireFault::kProtocol);
  }
}

// ---------------------------------------------------------------------------
// Server + Client round trip (in-process, real sockets)

TEST(TransportTest, RoundTripExactCountAndTenantSurvival) {
  service::TriangleService svc(light_service());
  Server server(svc);
  server.start();

  ClientOptions copts;
  copts.port = server.port();
  Client client(copts);

  const auto reference = gen::complete(20);
  service::Request request = count_request(share(reference.edges));
  request.tenant_id = "wire-tenant";
  request.priority = service::Priority::kHigh;

  const service::Response response = client.execute(request);
  EXPECT_EQ(response.status, service::Status::kOk);
  EXPECT_EQ(response.triangles, reference.expected_triangles);

  // The tenant id crossed the wire: the service's metrics carry a slice
  // for it (fetched over the streamed-metrics path for good measure).
  const std::string metrics = client.fetch_metrics();
  EXPECT_NE(metrics.find("wire-tenant"), std::string::npos);
  EXPECT_EQ(svc.metrics().tenants.count("wire-tenant"), 1u);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.duplicates, 0u);
}

TEST(TransportTest, ClusteringAndTrussOpsOverTheWire) {
  service::TriangleService svc(light_service());
  Server server(svc);
  server.start();
  ClientOptions copts;
  copts.port = server.port();
  Client client(copts);

  service::Request request = count_request(share(gen::complete(12).edges));
  request.op = service::Operation::kClustering;
  const service::Response clustering = client.execute(request);
  EXPECT_EQ(clustering.status, service::Status::kOk);
  EXPECT_DOUBLE_EQ(clustering.clustering, 1.0);  // K_n is fully clustered

  request.op = service::Operation::kTruss;
  const service::Response truss = client.execute(request);
  EXPECT_EQ(truss.status, service::Status::kOk);
  EXPECT_EQ(truss.max_trussness, 12u);  // K_n is an n-truss
}

TEST(TransportTest, DuplicateRequestIdExecutesAtMostOnce) {
  service::TriangleService svc(light_service());
  Server server(svc);
  server.start();
  ClientOptions copts;
  copts.port = server.port();
  Client client(copts);

  const auto reference = gen::complete(16);
  const service::Request request = count_request(share(reference.edges));

  const service::Response first = client.execute_with_id(request, 900);
  // Retry of an already-completed id — even across a reconnect.
  client.disconnect();
  const service::Response second = client.execute_with_id(request, 900);

  EXPECT_EQ(first.status, service::Status::kOk);
  EXPECT_EQ(second.status, service::Status::kOk);
  EXPECT_EQ(first.triangles, reference.expected_triangles);
  EXPECT_EQ(second.triangles, reference.expected_triangles);

  // At-most-once: the service executed one request; the wire layer served
  // the duplicate from its dedup table.
  EXPECT_EQ(svc.metrics().submitted, 1u);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.duplicates, 1u);
}

TEST(TransportTest, TornResponseFrameIsRetriedIdempotently) {
  // The server tears the first response frame mid-payload and drops the
  // connection. The client must detect the tear, reconnect, resend the
  // same id, and receive the *recorded* response — the request executes
  // exactly once.
  service::ChaosPlan chaos;
  chaos.script({.site = service::ChaosSite::kWireTornFrame, .occurrence = 1});
  service::TriangleService svc(light_service());
  ServerOptions sopts;
  sopts.chaos = &chaos;
  Server server(svc, sopts);
  server.start();
  ClientOptions copts;
  copts.port = server.port();
  Client client(copts);

  const auto reference = gen::complete(18);
  const service::Response response =
      client.execute(count_request(share(reference.edges)));
  EXPECT_EQ(response.status, service::Status::kOk);
  EXPECT_EQ(response.triangles, reference.expected_triangles);
  EXPECT_EQ(svc.metrics().submitted, 1u) << "torn frame caused re-execution";
  EXPECT_GE(chaos.fired(), 1u);
  EXPECT_GE(server.stats().duplicates, 1u);
}

TEST(TransportTest, ConnectionResetIsRetriedIdempotently) {
  service::ChaosPlan chaos;
  chaos.script({.site = service::ChaosSite::kWireConnReset, .occurrence = 1});
  service::TriangleService svc(light_service());
  ServerOptions sopts;
  sopts.chaos = &chaos;
  Server server(svc, sopts);
  server.start();
  ClientOptions copts;
  copts.port = server.port();
  Client client(copts);

  const auto reference = gen::complete(14);
  const service::Response response =
      client.execute(count_request(share(reference.edges)));
  EXPECT_EQ(response.status, service::Status::kOk);
  EXPECT_EQ(response.triangles, reference.expected_triangles);
  EXPECT_EQ(svc.metrics().submitted, 1u);
}

TEST(TransportTest, DelayedAckStillDeliversWithinTimeout) {
  service::ChaosPlan chaos;
  chaos.script({.site = service::ChaosSite::kWireDelayedAck,
                .occurrence = 1,
                .delay_ms = 30});
  service::TriangleService svc(light_service());
  ServerOptions sopts;
  sopts.chaos = &chaos;
  Server server(svc, sopts);
  server.start();
  ClientOptions copts;
  copts.port = server.port();
  Client client(copts);

  const auto reference = gen::complete(10);
  const auto start = std::chrono::steady_clock::now();
  const service::Response response =
      client.execute(count_request(share(reference.edges)));
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(response.status, service::Status::kOk);
  EXPECT_EQ(response.triangles, reference.expected_triangles);
  EXPECT_GE(elapsed_ms, 25.0) << "delayed ack did not delay";
  EXPECT_GE(chaos.fired(), 1u);
}

TEST(TransportTest, HeartbeatReportsLiveness) {
  service::TriangleService svc(light_service());
  Server server(svc);
  server.start();
  ClientOptions copts;
  copts.port = server.port();
  Client client(copts);
  EXPECT_FALSE(client.heartbeat());  // alive, not draining
  EXPECT_GE(server.stats().heartbeats, 1u);
}

TEST(TransportTest, DrainRefusesNewWorkRetryablyAndFlushesInFlight) {
  service::TriangleService svc(light_service());
  Server server(svc);
  server.start();

  // Raw wire conversation so the test can hold a request in flight while
  // poking the draining server with another.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  PayloadWriter hello;
  hello.u64(4242);
  send_frame(fd, FrameType::kHello, 0, hello.data());
  Frame frame;
  ASSERT_TRUE(recv_frame(fd, frame));
  ASSERT_EQ(frame.header.type, FrameType::kHelloAck);

  // Request 1 goes in while the workers are paused: in flight, no response.
  svc.pause();
  const auto reference = gen::complete(8);
  send_frame(fd, FrameType::kRequest, 1,
             encode_request(count_request(share(reference.edges))));
  // Let the reader admit it before draining.
  while (server.stats().requests < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::thread drainer([&] { server.drain(); });
  while (!server.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Request 2 arrives mid-drain: refused with a *retryable* typed error.
  send_frame(fd, FrameType::kRequest, 2,
             encode_request(count_request(share(reference.edges))));
  bool saw_reject = false;
  bool saw_response = false;
  svc.resume();  // in-flight request 1 now finishes and must be flushed
  try {
    while (!(saw_reject && saw_response)) {
      Frame in;
      if (!recv_frame(fd, in)) break;
      if (in.header.type == FrameType::kError && in.header.request_id == 2) {
        EXPECT_NE(in.header.flags & kFlagRetryable, 0)
            << "drain rejection must be retryable";
        saw_reject = true;
      } else if (in.header.type == FrameType::kResponse &&
                 in.header.request_id == 1) {
        const service::Response response = decode_response(in.payload);
        EXPECT_EQ(response.status, service::Status::kOk);
        EXPECT_EQ(response.triangles, reference.expected_triangles);
        saw_response = true;
      }
    }
  } catch (const WireError&) {
    // The drained server closed the connection under us — fine as long as
    // both frames already arrived.
  }
  drainer.join();
  EXPECT_TRUE(saw_reject);
  EXPECT_TRUE(saw_response) << "drain dropped an admitted request";
  EXPECT_GE(server.stats().drained_rejects, 1u);
  util::io::close_quiet(fd);
}

// ---------------------------------------------------------------------------
// Wire-version negotiation: a version-skewed peer gets a *typed* protocol
// reject on both sides of the connection — never a hang, never a checksum
// fault mistaken for line noise.

/// A 24-byte frame header hand-crafted at wire version 1. The version check
/// precedes the payload and checksum reads, so those fields are free-form.
std::vector<std::uint8_t> v1_frame(FrameType type) {
  PayloadWriter h;
  h.u32(kWireMagic);
  h.u16(1);  // ancient wire version
  h.u8(static_cast<std::uint8_t>(type));
  h.u8(0);                    // flags
  h.u64(0);                   // request id
  h.u32(0);                   // payload size
  h.u32(0);                   // checksum (never reached)
  return h.take();
}

TEST(WireVersionTest, V1ClientGetsTypedRejectFromServerNotAHang) {
  service::TriangleService svc(light_service());
  Server server(svc);
  server.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // Open with a v1 hello: the server must answer with a non-retryable
  // kError naming the version mismatch, then close — not stall waiting for
  // more bytes and not tear the connection silently.
  const std::vector<std::uint8_t> hello = v1_frame(FrameType::kHello);
  ASSERT_EQ(util::io::write_full(fd, hello.data(), hello.size()).status,
            util::io::IoStatus::kOk);

  Frame reject;
  ASSERT_TRUE(recv_frame(fd, reject));
  EXPECT_EQ(reject.header.type, FrameType::kError);
  EXPECT_EQ(reject.header.flags & kFlagRetryable, 0)
      << "a version mismatch must not invite retries";
  const std::string message(reject.payload.begin(), reject.payload.end());
  EXPECT_NE(message.find("version"), std::string::npos) << message;

  // Nothing follows the reject: the server closes its side.
  Frame trailing;
  try {
    EXPECT_FALSE(recv_frame(fd, trailing));
  } catch (const WireError&) {
    // A reset instead of a clean close is acceptable — just no hang.
  }
  EXPECT_GE(server.stats().protocol_errors, 1u);
  util::io::close_quiet(fd);
}

TEST(WireVersionTest, ClientRejectsV1ServerImmediatelyWithoutRetrying) {
  // A fake "old" server: accepts the TCP connection, reads the client's
  // hello, and answers with a v1 frame.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);

  std::thread old_server([listen_fd] {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) return;
    Frame hello;
    try {
      (void)recv_frame(conn, hello);  // the client's (valid, v3) hello
    } catch (const WireError&) {
    }
    const std::vector<std::uint8_t> ack = v1_frame(FrameType::kHelloAck);
    (void)util::io::write_full(conn, ack.data(), ack.size());
    // Hold the socket open: a hanging client would block here, which the
    // assertion below (immediate typed failure) would catch as a timeout.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    util::io::close_quiet(conn);
  });

  ClientOptions copts;
  copts.port = ntohs(addr.sin_port);
  copts.max_attempts = 5;            // must not be consumed:
  copts.backoff_initial_ms = 5000;   // any retry would blow the deadline
  Client client(copts);
  const auto started = std::chrono::steady_clock::now();
  try {
    (void)client.execute(count_request(share(gen::complete(6).edges)));
    FAIL() << "expected TransportError{kProtocol}";
  } catch (const TransportError& error) {
    EXPECT_EQ(error.fault(), TransportFault::kProtocol);
    EXPECT_NE(std::string(error.what()).find("version"), std::string::npos)
        << error.what();
  }
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000)
      << "a protocol violation must fail fast, not burn the retry budget";

  old_server.join();
  util::io::close_quiet(listen_fd);
}

TEST(TransportTest, ClientGivesUpWithTypedErrorWhenServerGone) {
  ClientOptions copts;
  copts.port = 1;  // nothing listens here
  copts.max_attempts = 2;
  copts.backoff_initial_ms = 1;
  copts.backoff_max_ms = 2;
  Client client(copts);
  try {
    (void)client.execute(count_request(share(gen::complete(6).edges)));
    FAIL() << "expected TransportError";
  } catch (const TransportError& error) {
    EXPECT_EQ(error.fault(), TransportFault::kExhausted);
  }
}

}  // namespace
}  // namespace trico::transport
