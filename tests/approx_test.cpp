// Tests for approximate counting (DOULION, wedge sampling) and the hybrid
// dense/forward counter (the paper's §V related work and §VI future work).

#include <gtest/gtest.h>

#include "cpu/approx.hpp"
#include "cpu/counting.hpp"
#include "cpu/hybrid.hpp"
#include "gen/generators.hpp"
#include "gen/reference.hpp"

namespace trico::cpu {
namespace {

TEST(DoulionTest, ProbabilityOneIsExact) {
  const EdgeList g = gen::erdos_renyi(300, 2500, 3);
  const ApproxResult r = count_doulion(g, 1.0, 9);
  EXPECT_DOUBLE_EQ(r.estimate, static_cast<double>(count_forward(g)));
  EXPECT_EQ(r.work_items, g.num_edges());
}

TEST(DoulionTest, EstimateWithinToleranceOnTriangleRichGraph) {
  gen::RmatParams params;
  params.scale = 11;
  params.edge_factor = 16;
  const EdgeList g = gen::rmat(params, 4);
  const auto exact = static_cast<double>(count_forward(g));
  // Average a few seeds; DOULION is unbiased so the mean converges fast on
  // triangle-rich graphs.
  double sum = 0;
  const int runs = 5;
  for (int s = 0; s < runs; ++s) {
    sum += count_doulion(g, 0.5, 100 + s).estimate;
  }
  const double mean = sum / runs;
  EXPECT_NEAR(mean / exact, 1.0, 0.15) << "exact=" << exact;
}

TEST(DoulionTest, SparsificationShrinksWork) {
  const EdgeList g = gen::erdos_renyi(500, 10000, 5);
  const ApproxResult r = count_doulion(g, 0.25, 1);
  EXPECT_LT(r.work_items, g.num_edges() / 2);
  EXPECT_GT(r.work_items, g.num_edges() / 8);
}

TEST(DoulionTest, RejectsBadProbability) {
  const EdgeList g = gen::erdos_renyi(10, 20, 1);
  EXPECT_THROW(count_doulion(g, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(count_doulion(g, 1.5, 1), std::invalid_argument);
}

TEST(WedgeSamplingTest, ExactOnCompleteGraph) {
  // Every wedge of a complete graph closes, so any sample size is exact.
  const gen::ReferenceGraph g = gen::complete(20);
  const ApproxResult r = count_wedge_sampling(g.edges, 500, 3);
  EXPECT_DOUBLE_EQ(r.estimate, static_cast<double>(g.expected_triangles));
}

TEST(WedgeSamplingTest, ZeroOnTriangleFreeGraph) {
  const gen::ReferenceGraph g = gen::complete_bipartite(20, 20);
  const ApproxResult r = count_wedge_sampling(g.edges, 2000, 3);
  EXPECT_DOUBLE_EQ(r.estimate, 0.0);
}

TEST(WedgeSamplingTest, EstimateWithinTolerance) {
  gen::RmatParams params;
  params.scale = 11;
  params.edge_factor = 16;
  const EdgeList g = gen::rmat(params, 4);
  const auto exact = static_cast<double>(count_forward(g));
  const ApproxResult r = count_wedge_sampling(g, 200000, 11);
  EXPECT_NEAR(r.estimate / exact, 1.0, 0.1);
}

TEST(WedgeSamplingTest, EmptyInputsAreSafe) {
  EXPECT_DOUBLE_EQ(count_wedge_sampling(EdgeList{}, 100, 1).estimate, 0.0);
  const EdgeList g = gen::erdos_renyi(10, 20, 1);
  EXPECT_DOUBLE_EQ(count_wedge_sampling(g, 0, 1).estimate, 0.0);
}

TEST(DenseBitsetTest, MatchesClosedForms) {
  for (const gen::ReferenceGraph& g : gen::all_small_references()) {
    EXPECT_EQ(count_dense_bitset(g.edges), g.expected_triangles) << g.family;
  }
}

TEST(DenseBitsetTest, MatchesForwardOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const EdgeList g = gen::erdos_renyi(400, 6000, seed);
    EXPECT_EQ(count_dense_bitset(g), count_forward(g));
  }
}

class HybridThresholdTest : public ::testing::TestWithParam<EdgeIndex> {};

TEST_P(HybridThresholdTest, ExactForAnyThreshold) {
  gen::RmatParams params;
  params.scale = 10;
  params.edge_factor = 12;
  const EdgeList g = gen::rmat(params, 8);
  const TriangleCount expected = count_forward(g);
  EXPECT_EQ(count_hybrid(g, GetParam()), expected);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, HybridThresholdTest,
                         ::testing::Values<EdgeIndex>(0, 1, 2, 8, 32, 128,
                                                      1u << 20));

TEST(HybridTest, MatchesClosedForms) {
  for (const gen::ReferenceGraph& g : gen::all_small_references()) {
    EXPECT_EQ(count_hybrid(g.edges, 4), g.expected_triangles) << g.family;
  }
}

TEST(HybridTest, SkewedGraphWithTies) {
  // Windmill: hub has huge degree, spokes tie at low degree — stresses the
  // low/high partition with degree ties.
  const gen::ReferenceGraph g = gen::windmill(5, 9);
  for (EdgeIndex threshold : {0u, 3u, 4u, 5u, 100u}) {
    EXPECT_EQ(count_hybrid(g.edges, threshold), g.expected_triangles)
        << "threshold " << threshold;
  }
}

}  // namespace
}  // namespace trico::cpu
