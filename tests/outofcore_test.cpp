// Tests for out-of-core partitioned counting (the paper's §VI future work):
// the color-triple partition must be exact for any color count, each task
// must fit the memory cap, and the per-task responsibilities must be
// disjoint.

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <thread>

#include "cpu/counting.hpp"
#include "gen/generators.hpp"
#include "gen/reference.hpp"
#include "outofcore/counter.hpp"
#include "outofcore/partition.hpp"

namespace trico::outofcore {
namespace {

simt::DeviceConfig small_device() {
  simt::DeviceConfig config = simt::DeviceConfig::gtx_980();
  config.num_sms = 4;
  return config;
}

TEST(ColoringTest, BalancedAndDeterministic) {
  const Coloring a = color_vertices(10000, 4, 7);
  const Coloring b = color_vertices(10000, 4, 7);
  EXPECT_EQ(a.color, b.color);
  std::vector<int> histogram(4, 0);
  for (auto c : a.color) {
    ASSERT_LT(c, 4u);
    ++histogram[c];
  }
  for (int count : histogram) {
    EXPECT_GT(count, 2000);  // ~2500 expected; hash balance within 20%
    EXPECT_LT(count, 3000);
  }
}

TEST(ColoringTest, RejectsZeroColors) {
  EXPECT_THROW(color_vertices(10, 0, 1), std::invalid_argument);
}

TEST(PartitionTest, TaskCountFormula) {
  EXPECT_EQ(num_tasks(1), 1u);
  EXPECT_EQ(num_tasks(2), 4u);   // {000,001,011,111} as multisets {i<=j<=l}
  EXPECT_EQ(num_tasks(3), 10u);
  EXPECT_EQ(num_tasks(4), 20u);
}

TEST(PartitionTest, MakeAllTasksMatchesFormula) {
  const EdgeList g = gen::erdos_renyi(100, 300, 1);
  const Coloring coloring = color_vertices(g.num_vertices(), 3, 2);
  EXPECT_EQ(make_all_tasks(g, coloring).size(), num_tasks(3));
}

TEST(PartitionTest, TaskSubgraphHoldsOnlyTripleColoredEdges) {
  const EdgeList g = gen::erdos_renyi(200, 1500, 3);
  const Coloring coloring = color_vertices(g.num_vertices(), 4, 5);
  const SubgraphTask task = make_task(g, coloring, 0, 1, 3);
  for (const Edge& e : task.edges.edges()) {
    for (VertexId v : {e.u, e.v}) {
      const std::uint32_t c = coloring.of(v);
      EXPECT_TRUE(c == 0 || c == 1 || c == 3);
    }
  }
}

TEST(PartitionTest, RejectsUnsortedTriple) {
  const EdgeList g = gen::erdos_renyi(10, 20, 1);
  const Coloring coloring = color_vertices(g.num_vertices(), 3, 1);
  EXPECT_THROW(make_task(g, coloring, 2, 1, 1), std::invalid_argument);
  EXPECT_THROW(make_task(g, coloring, 0, 1, 3), std::invalid_argument);
}

TEST(PartitionTest, CpuTaskCountsSumToExactTotal) {
  for (std::uint32_t k : {1u, 2u, 3u, 5u}) {
    const EdgeList g = gen::barabasi_albert(500, 6, k);
    const TriangleCount expected = cpu::count_forward(g);
    const Coloring coloring = color_vertices(g.num_vertices(), k, 11);
    TriangleCount sum = 0;
    for (const SubgraphTask& task : make_all_tasks(g, coloring)) {
      sum += count_task_cpu(task, coloring);
    }
    EXPECT_EQ(sum, expected) << "k = " << k;
  }
}

TEST(OutOfCoreTest, ExactForVariousColorCounts) {
  const EdgeList g = gen::erdos_renyi(400, 3000, 9);
  const TriangleCount expected = cpu::count_forward(g);
  for (std::uint32_t k : {1u, 2u, 4u}) {
    OutOfCoreCounter counter(small_device(), k);
    const OutOfCoreResult result = counter.count(g);
    EXPECT_EQ(result.triangles, expected) << "k = " << k;
  }
}

TEST(OutOfCoreTest, ExactOnReferenceFamilies) {
  OutOfCoreCounter counter(small_device(), 3);
  for (const gen::ReferenceGraph& g : gen::all_small_references()) {
    EXPECT_EQ(counter.count(g.edges).triangles, g.expected_triangles)
        << g.family;
  }
}

TEST(OutOfCoreTest, TasksFitMemoryThatWholeGraphExceeds) {
  // A device whose memory the full-graph pipeline overflows even with the
  // SIII-D6 fallback: out-of-core with enough colors still processes it.
  gen::RmatParams params;
  params.scale = 11;
  params.edge_factor = 16;
  const EdgeList g = gen::rmat(params, 13);

  simt::DeviceConfig tiny = small_device();
  // Whole-graph counting arrays: ~2 * slots/2 * 4B + node + colors.
  tiny.memory_bytes = g.num_edge_slots() * 4;  // too small for the whole graph

  OutOfCoreCounter counter(tiny, 4);
  const OutOfCoreResult result = counter.count(g);
  EXPECT_EQ(result.triangles, cpu::count_forward(g));
  EXPECT_LE(result.max_task_bytes, tiny.memory_bytes);
}

TEST(OutOfCoreTest, ShippedVolumeGrowsWithColors) {
  const EdgeList g = gen::erdos_renyi(300, 3000, 2);
  OutOfCoreCounter k2(small_device(), 2);
  OutOfCoreCounter k4(small_device(), 4);
  const auto r2 = k2.count(g);
  const auto r4 = k4.count(g);
  EXPECT_EQ(r2.triangles, r4.triangles);
  // Each edge lands in ~k tasks, so total shipped slots grow with k.
  EXPECT_GT(r4.total_task_slots, r2.total_task_slots);
}

TEST(OutOfCoreTest, MultiDeviceSplitsTaskTime) {
  gen::RmatParams params;
  params.scale = 10;
  params.edge_factor = 12;
  const EdgeList g = gen::rmat(params, 5);
  OutOfCoreCounter one(small_device(), 4, 1);
  OutOfCoreCounter four(small_device(), 4, 4);
  const auto r1 = one.count(g);
  const auto r4 = four.count(g);
  EXPECT_EQ(r1.triangles, r4.triangles);
  EXPECT_LT(r4.device_ms, r1.device_ms);
  // Device indices actually rotate.
  bool saw_other_device = false;
  for (const TaskResult& task : r4.tasks) {
    if (task.device_index > 0) saw_other_device = true;
  }
  EXPECT_TRUE(saw_other_device);
}

TEST(OutOfCoreTest, RejectsBadConstruction) {
  EXPECT_THROW(OutOfCoreCounter(small_device(), 0), std::invalid_argument);
  EXPECT_THROW(OutOfCoreCounter(small_device(), 2, 0), std::invalid_argument);
}

TEST(OutOfCoreTest, CancelTokenStopsTheTaskLoop) {
  // The C(k+2,3) task loop polls the cooperative cancel token per task (and
  // make_task polls it per chunk): a counter whose token is already
  // cancelled must unwind promptly with OperationCancelled instead of
  // running every task to completion — this is how the scheduler watchdog
  // stops a deadline-blown out-of-core request mid-flight.
  const EdgeList g = gen::barabasi_albert(500, 6, 3);
  util::CancelToken token;
  core::CountingOptions options;
  options.sim.cancel = &token;
  OutOfCoreCounter counter(small_device(), 4, 1, options);

  token.request_cancel(util::CancelCause::kDeadline);
  EXPECT_THROW((void)counter.count(g), util::OperationCancelled);
}

TEST(OutOfCoreTest, CancelMidRunUnwindsFromAnotherThread) {
  gen::RmatParams params;
  params.scale = 11;
  params.edge_factor = 12;
  const EdgeList g = gen::rmat(params, 5);
  util::CancelToken token;
  core::CountingOptions options;
  options.sim.cancel = &token;
  // Many colors = many tasks, so there is a long task loop to interrupt.
  OutOfCoreCounter counter(small_device(), 6, 1, options);

  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.request_cancel(util::CancelCause::kUser);
  });
  EXPECT_THROW((void)counter.count(g), util::OperationCancelled);
  canceller.join();
}

TEST(PartitionTest, MakeTaskHonorsCancelToken) {
  const EdgeList g = gen::barabasi_albert(200, 4, 3);
  const Coloring coloring = color_vertices(g.num_vertices(), 3, 7);
  prim::ThreadPool pool(2);
  util::CancelToken token;
  token.request_cancel(util::CancelCause::kUser);
  EXPECT_THROW((void)make_task(g, coloring, 0, 1, 2, pool, &token),
               util::OperationCancelled);
  // Null token: unchanged behaviour.
  const SubgraphTask task = make_task(g, coloring, 0, 1, 2, pool, nullptr);
  EXPECT_EQ(task.edges.num_edge_slots(),
            make_task(g, coloring, 0, 1, 2).edges.num_edge_slots());
}

TEST(OutOfCoreTest, TaskRecordsAreConsistent) {
  const EdgeList g = gen::barabasi_albert(300, 5, 3);
  OutOfCoreCounter counter(small_device(), 3);
  const OutOfCoreResult result = counter.count(g);
  TriangleCount sum = 0;
  for (const TaskResult& task : result.tasks) {
    EXPECT_LE(task.i, task.j);
    EXPECT_LE(task.j, task.l);
    sum += task.triangles;
  }
  EXPECT_EQ(sum, result.triangles);
  EXPECT_GT(result.partition_ms, 0.0);
  EXPECT_GT(result.device_ms, 0.0);
}

}  // namespace
}  // namespace trico::outofcore
