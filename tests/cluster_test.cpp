// Tests for the distributed sharding coordinator (src/cluster/) and the
// primitives under it:
//
//  * cpu::shard_rows / count_prepared_range — the edge-balanced row tiling
//    must cover [0, n) contiguously and the per-shard partial counts must
//    sum to the whole-graph count exactly, for every shard width;
//  * HRW rendezvous ranking — deterministic, a permutation, and stable on
//    worker join/leave (only keys whose top-ranked slot departed move);
//  * sharded requests through a local TriangleService — exact partials,
//    consistent fingerprints/checksums, no memoization poisoning;
//  * the wire Client surfacing drain as a typed kDraining fault;
//  * and (gated on TRICO_BUILD_EXAMPLES) the Coordinator over real
//    trico_cli serve processes: exact counts in both plan modes, kill -9
//    mid-scatter with re-scatter recovery, the global tenant gate, same-key
//    lane batching, and a seeded wire-chaos storm.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/hrw.hpp"
#include "cpu/hybrid_engine.hpp"
#include "gen/generators.hpp"
#include "gen/reference.hpp"
#include "prim/thread_pool.hpp"
#include "service/catalog.hpp"
#include "service/request.hpp"
#include "service/service.hpp"
#include "service/sharding.hpp"
#include "transport/client.hpp"
#include "transport/server.hpp"

#ifdef TRICO_CLI_PATH
#include "cluster/coordinator.hpp"
#endif

namespace trico {
namespace {

std::shared_ptr<const EdgeList> share(EdgeList edges) {
  return std::make_shared<const EdgeList>(std::move(edges));
}

// ---------------------------------------------------------------------------
// cpu::shard_rows + count_prepared_range

TEST(ShardRowsTest, TilingCoversAllRowsContiguously) {
  prim::ThreadPool pool(3);
  gen::RmatParams params;
  params.scale = 9;
  params.edge_factor = 8;
  for (const EdgeList& graph :
       {gen::rmat(params, 7), gen::erdos_renyi(400, 2400, 11),
        gen::complete(40).edges, gen::star(64).edges}) {
    const cpu::PreparedGraph prepared = cpu::prepare(graph, pool);
    const cpu::PreparedGraphView view = prepared.view();
    for (const std::uint32_t k : {1u, 2u, 3u, 7u, 16u}) {
      cpu::ShardRange previous;
      EdgeIndex total_edges = 0;
      for (std::uint32_t i = 0; i < k; ++i) {
        const cpu::ShardRange range = cpu::shard_rows(view, i, k);
        // Contiguous tiling: shard 0 starts at row 0, every later shard
        // starts where its predecessor ended, the last one ends at n.
        EXPECT_EQ(range.row_begin, i == 0 ? 0 : previous.row_end);
        if (i + 1 == k) {
          EXPECT_EQ(range.row_end, view.num_vertices());
        }
        // Edge ranges snap to the CSR offsets of the row boundaries.
        EXPECT_EQ(range.edge_begin, view.offsets[range.row_begin]);
        EXPECT_EQ(range.edge_end, view.offsets[range.row_end]);
        total_edges += range.num_edges();
        previous = range;
      }
      EXPECT_EQ(total_edges, view.num_edges());
    }
  }
}

TEST(ShardRowsTest, PartialCountsSumToWholeGraphCount) {
  prim::ThreadPool pool(4);
  gen::RmatParams params;
  params.scale = 10;
  params.edge_factor = 8;
  for (const EdgeList& graph :
       {gen::rmat(params, 21), gen::barabasi_albert(500, 5, 3),
        gen::windmill(6, 8).edges, gen::complete(32).edges}) {
    const cpu::PreparedGraph prepared = cpu::prepare(graph, pool);
    const cpu::PreparedGraphView view = prepared.view();
    const TriangleCount expected = cpu::count_prepared(view, pool);
    for (const std::uint32_t k : {1u, 2u, 3u, 7u}) {
      TriangleCount sum = 0;
      for (std::uint32_t i = 0; i < k; ++i) {
        const cpu::ShardRange range = cpu::shard_rows(view, i, k);
        cpu::CountingStats stats;
        sum += cpu::count_prepared_range(view, pool, range.row_begin,
                                         range.row_end, &stats);
      }
      EXPECT_EQ(sum, expected) << "k=" << k;
    }
  }
}

TEST(ShardRowsTest, DegenerateShapes) {
  prim::ThreadPool pool(2);
  // Empty graph: every shard is empty.
  const cpu::PreparedGraph empty =
      cpu::prepare(EdgeList::from_undirected_pairs({}, 0), pool);
  const cpu::ShardRange er = cpu::shard_rows(empty.view(), 0, 4);
  EXPECT_EQ(er.num_rows(), 0u);
  EXPECT_EQ(er.num_edges(), 0u);
  // More shards than rows: trailing shards are empty but the tiling still
  // covers [0, n) and the partials still sum exactly.
  const gen::ReferenceGraph tri = gen::complete(3);
  const cpu::PreparedGraph prepared = cpu::prepare(tri.edges, pool);
  const cpu::PreparedGraphView view = prepared.view();
  TriangleCount sum = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const cpu::ShardRange range = cpu::shard_rows(view, i, 8);
    sum += cpu::count_prepared_range(view, pool, range.row_begin,
                                     range.row_end);
  }
  EXPECT_EQ(sum, tri.expected_triangles);
}

// ---------------------------------------------------------------------------
// HRW rendezvous hashing

TEST(HrwTest, RankIsDeterministicPermutation) {
  for (std::uint64_t key : {0ull, 1ull, 0xdeadbeefull, ~0ull}) {
    const std::vector<std::size_t> rank = cluster::hrw_rank_all(key, 7);
    ASSERT_EQ(rank.size(), 7u);
    std::vector<bool> seen(7, false);
    for (const std::size_t slot : rank) {
      ASSERT_LT(slot, 7u);
      EXPECT_FALSE(seen[slot]);
      seen[slot] = true;
    }
    EXPECT_EQ(rank, cluster::hrw_rank_all(key, 7));
  }
}

TEST(HrwTest, OnlyKeysOfDepartedSlotMoveOnLeave) {
  constexpr std::size_t kSlots = 5;
  constexpr int kKeys = 2000;
  std::vector<std::size_t> all(kSlots);
  std::iota(all.begin(), all.end(), std::size_t{0});
  int moved = 0, owned_by_departed = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::uint64_t key = cluster::hrw_mix(static_cast<std::uint64_t>(i));
    const std::size_t before = cluster::hrw_rank(key, all)[0];
    std::vector<std::size_t> without;
    for (std::size_t s = 0; s < kSlots; ++s) {
      if (s != 2) without.push_back(s);
    }
    const std::size_t after = cluster::hrw_rank(key, without)[0];
    if (before == 2) {
      ++owned_by_departed;
      EXPECT_NE(after, 2u);
    } else {
      // The defining rendezvous property: keys not owned by the departed
      // slot keep their placement exactly.
      EXPECT_EQ(after, before);
      if (after != before) ++moved;
    }
  }
  EXPECT_EQ(moved, 0);
  // Sanity: the departed slot owned roughly 1/kSlots of the keyspace.
  EXPECT_GT(owned_by_departed, kKeys / 10);
  EXPECT_LT(owned_by_departed, kKeys / 2);
}

TEST(HrwTest, JoinOnlyStealsKeysItNowTops) {
  constexpr int kKeys = 2000;
  int stolen = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::uint64_t key = cluster::hrw_mix(static_cast<std::uint64_t>(i) ^
                                               0x5eedull);
    const std::size_t before = cluster::hrw_rank_all(key, 4)[0];
    const std::size_t after = cluster::hrw_rank_all(key, 5)[0];
    if (after != before) {
      // A placement only changes because the new slot won the key.
      EXPECT_EQ(after, 4u);
      ++stolen;
    }
  }
  // The joiner takes roughly 1/5 of the keyspace — not nothing, not all.
  EXPECT_GT(stolen, kKeys / 10);
  EXPECT_LT(stolen, kKeys / 2);
}

// ---------------------------------------------------------------------------
// Sharded requests through a local TriangleService

service::ServiceOptions quiet_service(std::size_t workers = 2) {
  service::ServiceOptions options;
  options.scheduler.workers = workers;
  options.scheduler.queue_capacity = 256;
  return options;
}

service::Request shard_request(std::shared_ptr<const EdgeList> graph,
                               std::uint32_t index, std::uint32_t count) {
  service::Request request;
  request.graph = std::move(graph);
  request.op = service::Operation::kCount;
  request.backend = service::Backend::kCpuHybrid;
  request.shard_index = index;
  request.shard_count = count;
  return request;
}

TEST(ShardedServiceTest, PartialsSumExactWithConsistentEchoes) {
  service::TriangleService service(quiet_service());
  const gen::ReferenceGraph reference = gen::windmill(7, 9);
  const auto graph = share(reference.edges);

  constexpr std::uint32_t kShards = 3;
  TriangleCount sum = 0;
  std::uint64_t fingerprint = 0;
  VertexId next_row = 0;
  for (std::uint32_t i = 0; i < kShards; ++i) {
    const service::Response r =
        service.execute(shard_request(graph, i, kShards));
    ASSERT_EQ(r.status, service::Status::kOk) << r.reason;
    EXPECT_EQ(r.shard_index, i);
    EXPECT_EQ(r.shard_count, kShards);
    // Every shard reports the same prepared-graph fingerprint and the rows
    // tile contiguously — the same integrity checks the gather runs.
    if (i == 0) {
      fingerprint = r.graph_fingerprint;
      EXPECT_EQ(r.shard_row_begin, 0u);
    } else {
      EXPECT_EQ(r.graph_fingerprint, fingerprint);
      EXPECT_EQ(r.shard_row_begin, next_row);
    }
    next_row = static_cast<VertexId>(r.shard_row_end);
    sum += r.triangles;
  }
  EXPECT_NE(fingerprint, 0u);
  EXPECT_EQ(sum, reference.expected_triangles);

  // Re-running a shard reproduces the identical checksum (pure function of
  // the prepared CSR slice).
  const service::Response again = service.execute(shard_request(graph, 1, 3));
  const service::Response before = service.execute(shard_request(graph, 1, 3));
  EXPECT_EQ(again.shard_checksum, before.shard_checksum);
}

TEST(ShardedServiceTest, PartialsDoNotPoisonResultMemoization) {
  service::TriangleService service(quiet_service());
  const gen::ReferenceGraph reference = gen::complete(24);
  const auto graph = share(reference.edges);

  // Seed the (key, op) space with a partial first...
  const service::Response partial = service.execute(shard_request(graph, 0, 4));
  ASSERT_EQ(partial.status, service::Status::kOk) << partial.reason;
  ASSERT_LT(partial.triangles, reference.expected_triangles);

  // ...then the whole-graph count must still be exact (a memoized partial
  // would short-circuit it wrong), twice so the second hit is a cache hit.
  for (int i = 0; i < 2; ++i) {
    service::Request whole;
    whole.graph = graph;
    whole.op = service::Operation::kCount;
    whole.backend = service::Backend::kCpuHybrid;
    const service::Response r = service.execute(std::move(whole));
    ASSERT_EQ(r.status, service::Status::kOk) << r.reason;
    EXPECT_EQ(r.triangles, reference.expected_triangles);
  }
}

TEST(ShardedServiceTest, InvalidShardRequestsAreTypedFailures) {
  service::TriangleService service(quiet_service(1));
  const auto graph = share(gen::complete(8).edges);

  // shard_index out of range.
  service::Response r = service.execute(shard_request(graph, 3, 3));
  EXPECT_EQ(r.status, service::Status::kFailed);
  EXPECT_FALSE(r.reason.empty());

  // Sharding only composes with kCount: partial clustering coefficients
  // cannot be summed.
  service::Request clustering = shard_request(graph, 0, 2);
  clustering.op = service::Operation::kClustering;
  r = service.execute(std::move(clustering));
  EXPECT_EQ(r.status, service::Status::kFailed);
  EXPECT_FALSE(r.reason.empty());
}

// ---------------------------------------------------------------------------
// Client drain surfacing

TEST(ClusterClientTest, DrainSurfacesAsTypedDrainingFault) {
  service::TriangleService service(quiet_service(2));
  transport::Server server(service);
  server.start();

  transport::ClientOptions copts;
  copts.port = server.port();
  copts.max_attempts = 5;  // must NOT burn attempts on a draining server
  transport::Client client(copts);

  // Open the connection before the drain (a drained server refuses *new*
  // connections outright; the typed notice is for peers that were already
  // attached).
  service::Request request;
  request.graph = share(gen::complete(6).edges);
  request.backend = service::Backend::kCpuHybrid;
  ASSERT_EQ(client.execute(request).status, service::Status::kOk);

  // Drain to completion: the server sends kDrainNotice on the live
  // connection before closing it, so the notice is waiting in the
  // client's socket buffer.
  server.drain();

  // The next request must surface the distinct typed fault the
  // coordinator keys immediate failover on — not folded into kExhausted,
  // no backoff budget burned.
  try {
    (void)client.execute(request);
    FAIL() << "draining server accepted a request";
  } catch (const transport::TransportError& error) {
    EXPECT_EQ(error.fault(), transport::TransportFault::kDraining);
  }
  server.stop();
}

// ---------------------------------------------------------------------------
// Coordinator over real worker processes (needs the trico_cli binary)

#ifdef TRICO_CLI_PATH

int requested_load(int fallback) {
  const char* env = std::getenv("TRICO_CLUSTER_REQUESTS");
  if (env == nullptr) return fallback;
  const int n = std::atoi(env);
  return n > 0 ? n : fallback;
}

cluster::CoordinatorOptions coordinator_options(int workers) {
  cluster::CoordinatorOptions copts;
  copts.supervisor.cli_path = TRICO_CLI_PATH;
  copts.supervisor.num_workers = workers;
  copts.supervisor.monitor_period_ms = 20;
  copts.supervisor.client.max_attempts = 6;
  copts.supervisor.client.backoff_initial_ms = 5;
  copts.supervisor.client.backoff_max_ms = 100;
  return copts;
}

service::Request count_request(std::shared_ptr<const EdgeList> graph,
                               const std::string& tenant = "") {
  service::Request request;
  request.graph = std::move(graph);
  request.op = service::Operation::kCount;
  request.backend = service::Backend::kCpuHybrid;
  request.tenant_id = tenant;
  return request;
}

TEST(CoordinatorProcessTest, ExactCountsInBothPlanModes) {
  cluster::CoordinatorOptions copts = coordinator_options(2);
  // complete(40) has 40*39/2 = 780 oriented edge slots: above 256 it
  // scatters, while complete(12) (66 slots) affinity-routes whole.
  copts.scatter_edge_threshold = 256;
  cluster::Coordinator coordinator(copts);
  coordinator.start();

  const gen::ReferenceGraph small = gen::complete(12);
  const gen::ReferenceGraph big = gen::complete(40);

  const service::Response affinity =
      coordinator.execute(count_request(share(small.edges)));
  ASSERT_EQ(affinity.status, service::Status::kOk) << affinity.reason;
  EXPECT_EQ(affinity.triangles, small.expected_triangles);

  const service::Response scatter =
      coordinator.execute(count_request(share(big.edges)));
  ASSERT_EQ(scatter.status, service::Status::kOk) << scatter.reason;
  EXPECT_EQ(scatter.triangles, big.expected_triangles);
  EXPECT_EQ(scatter.shard_count, 2u);
  EXPECT_NE(scatter.graph_fingerprint, 0u);

  const cluster::CoordinatorStats stats = coordinator.stats();
  EXPECT_GE(stats.affinity_requests, 1u);
  EXPECT_GE(stats.scatter_requests, 1u);
  EXPECT_GE(stats.shard_subrequests, 2u);
  EXPECT_EQ(stats.gather_integrity_failures, 0u);

  // Satellite: the cluster snapshot carries the per-worker slots.
  const service::MetricsSnapshot snapshot = coordinator.metrics();
  ASSERT_EQ(snapshot.workers.size(), 2u);
  for (const auto& slot : snapshot.workers) {
    EXPECT_TRUE(slot.alive);
    EXPECT_GT(slot.port, 0);
  }
  EXPECT_NE(coordinator.metrics_text().find("workers:"), std::string::npos);

  coordinator.stop();
}

TEST(CoordinatorProcessTest, KillNineMidScatterStillYieldsExactCounts) {
  cluster::CoordinatorOptions copts = coordinator_options(3);
  copts.scatter_edge_threshold = 64;  // everything below scatters
  copts.shard_attempts = 6;
  // Seeded wire delays stretch every shard's flight time so the kill below
  // reliably lands mid-gather (deterministic chaos schedule per worker).
  copts.supervisor.worker_args = {"--chaos-seed", "20260808", "--chaos-delay",
                                  "0.9", "--chaos-max-delay", "25"};
  cluster::Coordinator coordinator(copts);
  coordinator.start();

  const gen::ReferenceGraph reference = gen::windmill(6, 10);
  const auto graph = share(reference.edges);

  std::atomic<bool> done{false};
  std::thread killer([&] {
    // Keep killing a rotating worker while scatters are in flight; the
    // supervisor respawns each victim, the coordinator re-scatters the lost
    // shards.
    for (int k = 0; !done.load(); ++k) {
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
      if (done.load()) break;
      coordinator.supervisor().kill_worker(static_cast<std::size_t>(k % 3));
    }
  });

  const int rounds = requested_load(25);
  int ok = 0, failed = 0, wrong = 0;
  for (int i = 0; i < rounds; ++i) {
    const service::Response r = coordinator.execute(count_request(graph));
    if (r.status == service::Status::kOk) {
      ++ok;
      if (r.triangles != reference.expected_triangles) ++wrong;
    } else {
      ++failed;
      EXPECT_FALSE(r.reason.empty());
      if (failed <= 3) {
        std::cerr << "round " << i << " failed: " << r.reason << "\n";
      }
    }
    if (coordinator.stats().rescatters >= 1 && i >= 4) break;
  }
  done.store(true);
  killer.join();

  EXPECT_EQ(wrong, 0) << "a kill corrupted an exact scatter/gather count";
  EXPECT_GT(ok, 0);
  const cluster::CoordinatorStats stats = coordinator.stats();
  EXPECT_GE(stats.rescatters, 1u)
      << "no shard was ever lost+recovered (ok=" << ok
      << " failed=" << failed << ")";
  EXPECT_EQ(stats.gather_integrity_failures, 0u);
  coordinator.stop();
}

TEST(CoordinatorProcessTest, GlobalTenantGateCapsAggregateInflight) {
  cluster::CoordinatorOptions copts = coordinator_options(2);
  copts.tenant_inflight_cap = 1;
  copts.scheduler.workers = 8;
  // Slow the workers down so the flood genuinely overlaps at the gate.
  copts.supervisor.worker_args = {"--chaos-seed", "5", "--chaos-delay", "1.0",
                                  "--chaos-max-delay", "20"};
  cluster::Coordinator coordinator(copts);
  coordinator.start();

  const gen::ReferenceGraph reference = gen::complete(16);
  const auto graph = share(reference.edges);

  // Hot tenant: 8 concurrent plans against a cap of 1 — at most one runs,
  // one waits, the rest bounce with the typed queue-full rejection.
  constexpr int kFlood = 8;
  std::atomic<int> hot_ok{0}, hot_rejected{0}, hot_wrong{0};
  std::vector<std::thread> flood;
  for (int i = 0; i < kFlood; ++i) {
    flood.emplace_back([&] {
      const service::Response r =
          coordinator.execute(count_request(graph, "hot"));
      if (r.status == service::Status::kOk) {
        if (r.triangles != reference.expected_triangles) ++hot_wrong;
        ++hot_ok;
      } else if (r.status == service::Status::kRejectedQueueFull) {
        ++hot_rejected;
      }
    });
  }
  // Light tenant: serial requests must keep landing while the hot tenant
  // floods — the gate is per tenant, not global.
  int light_ok = 0;
  for (int i = 0; i < 4; ++i) {
    const service::Response r =
        coordinator.execute(count_request(graph, "light"));
    if (r.status == service::Status::kOk) {
      EXPECT_EQ(r.triangles, reference.expected_triangles);
      ++light_ok;
    }
  }
  for (std::thread& thread : flood) thread.join();

  EXPECT_EQ(hot_wrong.load(), 0);
  EXPECT_GE(hot_ok.load(), 1);
  EXPECT_GE(hot_rejected.load(), 1)
      << "a flood of " << kFlood << " never tripped the cap-1 gate";
  EXPECT_EQ(light_ok, 4) << "the hot tenant starved the light tenant";

  const cluster::CoordinatorStats stats = coordinator.stats();
  EXPECT_GE(stats.tenant_throttle_rejects, 1u);
  coordinator.stop();
}

TEST(CoordinatorProcessTest, LanesBatchSameKeyDispatches) {
  cluster::CoordinatorOptions copts = coordinator_options(1);
  copts.scheduler.workers = 8;
  // Delay every wire response so the single lane builds a real queue.
  copts.supervisor.worker_args = {"--chaos-seed", "9", "--chaos-delay", "1.0",
                                  "--chaos-max-delay", "10"};
  cluster::Coordinator coordinator(copts);
  coordinator.start();

  const gen::ReferenceGraph a = gen::complete(14);
  const gen::ReferenceGraph b = gen::windmill(4, 6);
  const auto graph_a = share(a.edges);
  const auto graph_b = share(b.edges);

  // Interleave two content keys; the lane's lookahead should re-order the
  // backlog into same-key runs (batched_dispatches counts continuations).
  std::vector<service::Ticket> tickets;
  for (int i = 0; i < 32; ++i) {
    tickets.push_back(coordinator.submit(
        count_request(i % 2 == 0 ? graph_a : graph_b)));
  }
  int wrong = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const service::Response r = tickets[i].wait();
    ASSERT_EQ(r.status, service::Status::kOk) << r.reason;
    const TriangleCount expected =
        i % 2 == 0 ? a.expected_triangles : b.expected_triangles;
    if (r.triangles != expected) ++wrong;
  }
  EXPECT_EQ(wrong, 0);
  EXPECT_GE(coordinator.stats().batched_dispatches, 1u)
      << "an interleaved backlog produced zero same-key continuations";
  coordinator.stop();
}

TEST(CoordinatorProcessTest, SeededChaosStormKeepsCountsExact) {
  // The CI storm: mixed tenants, both plan modes, seeded torn frames and
  // delayed acks in every worker, one kill -9 mid-run. Scaled up via
  // TRICO_CLUSTER_REQUESTS (the cluster-smoke workflow job runs 500).
  cluster::CoordinatorOptions copts = coordinator_options(3);
  copts.scatter_edge_threshold = 256;
  copts.shard_attempts = 6;
  copts.supervisor.worker_args = {"--chaos-seed", "20260808",
                                  "--chaos-torn",  "0.03",
                                  "--chaos-delay", "0.05",
                                  "--chaos-max-delay", "2"};
  cluster::Coordinator coordinator(copts);
  coordinator.start();

  const gen::ReferenceGraph small = gen::windmill(6, 8);   // affinity
  const gen::ReferenceGraph big = gen::complete(40);       // scatter
  const auto small_graph = share(small.edges);
  const auto big_graph = share(big.edges);

  const int total = requested_load(80);
  constexpr int kClients = 4;
  std::atomic<int> wrong{0}, ok{0}, failed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = c; i < total; i += kClients) {
        const bool scatter = i % 2 == 0;
        const service::Response r = coordinator.execute(count_request(
            scatter ? big_graph : small_graph, "tenant-" + std::to_string(c)));
        if (r.status == service::Status::kOk) {
          const TriangleCount expected =
              scatter ? big.expected_triangles : small.expected_triangles;
          if (r.triangles != expected) ++wrong;
          ++ok;
        } else {
          EXPECT_FALSE(r.reason.empty());
          ++failed;
        }
      }
    });
  }
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    coordinator.supervisor().kill_worker(1);
  });
  for (std::thread& thread : clients) thread.join();
  killer.join();

  EXPECT_EQ(wrong.load(), 0) << "chaos corrupted an exact count";
  EXPECT_GT(ok.load(), total / 2)
      << "too few successes: failover/re-scatter is not recovering "
      << "(ok=" << ok.load() << " failed=" << failed.load() << ")";
  const cluster::CoordinatorStats stats = coordinator.stats();
  EXPECT_GE(stats.scatter_requests, 1u);
  EXPECT_GE(stats.affinity_requests, 1u);
  EXPECT_EQ(stats.gather_integrity_failures, 0u);
  coordinator.stop();
}

#endif  // TRICO_CLI_PATH

}  // namespace
}  // namespace trico
