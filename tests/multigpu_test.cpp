// Tests for the multi-GPU extension (§III-E): exact counts under any device
// count, sensible scaling, and the Amdahl bound.

#include <gtest/gtest.h>

#include "cpu/counting.hpp"
#include "gen/generators.hpp"
#include "multigpu/multi_gpu.hpp"

namespace trico::multigpu {
namespace {

simt::DeviceConfig small_device() {
  simt::DeviceConfig config = simt::DeviceConfig::tesla_c2050();
  config.num_sms = 4;
  return config;
}

class DeviceCountTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DeviceCountTest, CountMatchesCpuForward) {
  const EdgeList g = gen::erdos_renyi(400, 3000, 13);
  MultiGpuCounter counter(small_device(), GetParam());
  EXPECT_EQ(counter.count(g).triangles, cpu::count_forward(g));
}

INSTANTIATE_TEST_SUITE_P(OneToFive, DeviceCountTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(MultiGpuTest, RejectsZeroDevices) {
  EXPECT_THROW(MultiGpuCounter(small_device(), 0), std::invalid_argument);
}

TEST(MultiGpuTest, SlicesPartitionTheEdges) {
  const EdgeList g = gen::barabasi_albert(500, 5, 21);
  MultiGpuCounter counter(small_device(), 3);
  const MultiGpuResult result = counter.count(g);
  std::uint64_t total_edges = 0;
  TriangleCount total_triangles = 0;
  for (const DeviceSlice& slice : result.slices) {
    total_edges += slice.edges;
    total_triangles += slice.triangles;
  }
  EXPECT_EQ(total_edges, g.num_edges());
  EXPECT_EQ(total_triangles, result.triangles);
}

TEST(MultiGpuTest, CountingPhaseShrinksWithMoreDevices) {
  // Triangle-rich graph: counting dominates, so the counting phase should
  // scale down with device count.
  gen::RmatParams params;
  params.scale = 10;
  params.edge_factor = 12;
  const EdgeList g = gen::rmat(params, 2);
  MultiGpuCounter one(small_device(), 1);
  MultiGpuCounter four(small_device(), 4);
  const MultiGpuResult r1 = one.count(g);
  const MultiGpuResult r4 = four.count(g);
  EXPECT_EQ(r1.triangles, r4.triangles);
  EXPECT_LT(r4.counting_ms, r1.counting_ms * 0.6);
  // Preprocessing is unchanged (runs on one device either way).
  EXPECT_NEAR(r4.preprocessing_ms, r1.preprocessing_ms,
              r1.preprocessing_ms * 0.01);
  // Broadcast cost only exists with more than one device.
  EXPECT_EQ(r1.broadcast_ms, 0.0);
  EXPECT_GT(r4.broadcast_ms, 0.0);
}

TEST(MultiGpuTest, OneDeviceDegeneratesToSingleGpuPipeline) {
  // With one device there is nothing to broadcast and nobody to gather
  // from: the run must cost exactly what the single-GPU pipeline costs.
  const EdgeList g = gen::erdos_renyi(400, 3000, 99);
  MultiGpuCounter one(small_device(), 1);
  const MultiGpuResult r = one.count(g);
  core::GpuForwardCounter single(small_device());
  const core::GpuCountResult s = single.count(g);
  EXPECT_EQ(r.triangles, s.triangles);
  EXPECT_EQ(r.broadcast_ms, 0.0);
  EXPECT_DOUBLE_EQ(r.preprocessing_ms, s.phases.preprocessing_ms());
  EXPECT_DOUBLE_EQ(r.counting_ms, s.phases.counting_ms);
  EXPECT_DOUBLE_EQ(r.gather_ms, s.phases.reduce_ms + s.phases.d2h_ms);
  EXPECT_DOUBLE_EQ(r.total_ms(), s.phases.total_ms());
}

TEST(MultiGpuTest, SpeedupRespectsAmdahlBound) {
  gen::RmatParams params;
  params.scale = 10;
  params.edge_factor = 10;
  const EdgeList g = gen::rmat(params, 6);
  MultiGpuCounter one(small_device(), 1);
  MultiGpuCounter four(small_device(), 4);
  const MultiGpuResult r1 = one.count(g);
  const MultiGpuResult r4 = four.count(g);
  const double speedup = r1.total_ms() / r4.total_ms();
  const double fraction = r1.preprocessing_ms / r1.total_ms();
  EXPECT_LE(speedup, amdahl_max_speedup(fraction, 4) * 1.05);
  EXPECT_GE(speedup, 0.5);  // broadcast overhead must not blow up the total
}

TEST(AmdahlTest, ClosedFormValues) {
  EXPECT_DOUBLE_EQ(amdahl_max_speedup(0.0, 4), 4.0);
  EXPECT_DOUBLE_EQ(amdahl_max_speedup(1.0, 4), 1.0);
  // The paper's §III-E extremes: p in [0.08, 0.76] -> 3.23 to 1.22 on 4 GPUs.
  EXPECT_NEAR(amdahl_max_speedup(0.08, 4), 3.23, 0.01);
  EXPECT_NEAR(amdahl_max_speedup(0.76, 4), 1.22, 0.01);
}

}  // namespace
}  // namespace trico::multigpu
