// Coordinator-HA tests: the lease file (fencing epochs, steal-after-expiry,
// graceful release), the durable exactly-once journal (recovery, torn-tail
// quarantine, duplicate discipline, checksummed replay), the journal-backed
// Server replay across process-analogue boundaries, the multi-endpoint
// Client's failover hops (connect-refused / draining / kNotLeader redirects
// that never burn the retry budget), worker-side epoch fencing, the bounded
// in-memory dedup LRU, and — gated on TRICO_CLI_PATH — a full active/standby
// HaCoordinator pair over real worker processes: pause the leader past its
// TTL, watch the standby promote at a higher epoch, and prove the deposed
// leader's stale-epoch scatters are fenced while client retries replay from
// the journal bit-identically.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "cluster/ha/journal.hpp"
#include "cluster/ha/lease.hpp"
#include "gen/reference.hpp"
#include "service/service.hpp"
#include "transport/client.hpp"
#include "transport/server.hpp"
#include "transport/wire.hpp"
#include "util/io.hpp"

#ifdef TRICO_CLI_PATH
#include "cluster/ha/node.hpp"
#endif

namespace trico::cluster::ha {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<const EdgeList> share(EdgeList edges) {
  return std::make_shared<const EdgeList>(std::move(edges));
}

service::Request count_request(std::shared_ptr<const EdgeList> graph) {
  service::Request request;
  request.graph = std::move(graph);
  request.op = service::Operation::kCount;
  request.backend = service::Backend::kCpuHybrid;
  return request;
}

service::ServiceOptions light_service() {
  service::ServiceOptions options;
  options.scheduler.workers = 2;
  return options;
}

/// A unique scratch directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "trico-ha-XXXXXX").string();
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path_ = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string sub(const std::string& name) const {
    return (fs::path(path_) / name).string();
  }

 private:
  std::string path_;
};

LeaseOptions lease_options(const std::string& path, double ttl_ms) {
  LeaseOptions options;
  options.path = path;
  options.ttl_ms = ttl_ms;
  return options;
}

JournalOptions journal_options(const std::string& dir,
                               std::uint64_t max_segment_bytes = 8ull << 20) {
  JournalOptions options;
  options.dir = dir;
  options.max_segment_bytes = max_segment_bytes;
  return options;
}

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> v) {
  return std::vector<std::uint8_t>(v);
}

// ---------------------------------------------------------------------------
// LeaseFile

TEST(LeaseTest, AcquireBumpsEpochAndRenewExtends) {
  TempDir dir;
  LeaseFile lease(lease_options(dir.sub("lease"), 10000));

  const LeaseFile::Acquire first = lease.try_acquire(71, 4242);
  ASSERT_TRUE(first.acquired);
  EXPECT_GE(first.epoch, 1u);

  const std::optional<LeaseRecord> record = lease.read();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->owner, 71u);
  EXPECT_EQ(record->port, 4242u);
  EXPECT_EQ(record->epoch, first.epoch);
  EXPECT_FALSE(record->expired(LeaseFile::now_ms()));

  // Re-acquiring our own lease is a (re-)promotion: the epoch bumps again.
  const LeaseFile::Acquire again = lease.try_acquire(71, 4242);
  ASSERT_TRUE(again.acquired);
  EXPECT_GT(again.epoch, first.epoch);

  EXPECT_TRUE(lease.renew(71, again.epoch, 4242));
  // A renewal at a stale epoch is leadership lost, not a silent success.
  EXPECT_FALSE(lease.renew(71, first.epoch, 4242));
}

TEST(LeaseTest, ExpiredLeaseIsStolenAtHigherEpoch) {
  TempDir dir;
  LeaseFile holder(lease_options(dir.sub("lease"), 60));
  LeaseFile thief(lease_options(dir.sub("lease"), 60));

  const LeaseFile::Acquire held = holder.try_acquire(1, 1111);
  ASSERT_TRUE(held.acquired);

  // While the lease is live the thief is refused and told who holds it.
  const LeaseFile::Acquire refused = thief.try_acquire(2, 2222);
  ASSERT_FALSE(refused.acquired);
  EXPECT_EQ(refused.current.owner, 1u);
  EXPECT_EQ(refused.current.epoch, held.epoch);

  // Past the TTL (the holder wedged): stolen, epoch strictly higher.
  std::this_thread::sleep_for(std::chrono::milliseconds(90));
  const LeaseFile::Acquire stolen = thief.try_acquire(2, 2222);
  ASSERT_TRUE(stolen.acquired);
  EXPECT_GT(stolen.epoch, held.epoch);

  // The deposed holder cannot renew at its old epoch.
  EXPECT_FALSE(holder.renew(1, held.epoch, 1111));
}

TEST(LeaseTest, ReleaseHandsOffImmediatelyKeepingEpochMonotone) {
  TempDir dir;
  LeaseFile a(lease_options(dir.sub("lease"), 10000));
  LeaseFile b(lease_options(dir.sub("lease"), 10000));

  const LeaseFile::Acquire held = a.try_acquire(1, 1111);
  ASSERT_TRUE(held.acquired);
  a.release(1, held.epoch);

  // No TTL wait: a released lease is takeable on the peer's next poll, and
  // the epoch survives the release (monotone across the handoff).
  const LeaseFile::Acquire taken = b.try_acquire(2, 2222);
  ASSERT_TRUE(taken.acquired);
  EXPECT_GT(taken.epoch, held.epoch);
}

TEST(LeaseTest, PeekReadsWithoutAnInstance) {
  TempDir dir;
  EXPECT_FALSE(LeaseFile::peek(dir.sub("missing")).has_value());

  LeaseFile lease(lease_options(dir.sub("lease"), 10000));
  const LeaseFile::Acquire held = lease.try_acquire(9, 909);
  ASSERT_TRUE(held.acquired);

  const std::optional<LeaseRecord> peeked = LeaseFile::peek(dir.sub("lease"));
  ASSERT_TRUE(peeked.has_value());
  EXPECT_EQ(peeked->owner, 9u);
  EXPECT_EQ(peeked->port, 909u);
  EXPECT_EQ(peeked->epoch, held.epoch);
}

// ---------------------------------------------------------------------------
// Journal

TEST(JournalTest, RecordLookupRoundTrip) {
  TempDir dir;
  Journal journal(journal_options(dir.sub("journal")));
  journal.open();
  journal.start_writer(1);

  const std::vector<std::uint8_t> payload = bytes({1, 2, 3, 4, 5, 6, 7});
  journal.record(77, 1, payload);
  journal.record(77, 2, bytes({9}));

  std::vector<std::uint8_t> out;
  ASSERT_TRUE(journal.lookup(77, 1, out));
  EXPECT_EQ(out, payload);
  ASSERT_TRUE(journal.lookup(77, 2, out));
  EXPECT_EQ(out, bytes({9}));
  EXPECT_FALSE(journal.lookup(77, 3, out));
  EXPECT_FALSE(journal.lookup(78, 1, out));

  const JournalStats stats = journal.stats();
  EXPECT_EQ(stats.appends, 2u);
  EXPECT_GE(stats.fsyncs, 1u);
  EXPECT_LE(stats.fsyncs, stats.appends);
  EXPECT_EQ(stats.replays, 2u);
  EXPECT_EQ(journal.size(), 2u);
  journal.close();
}

TEST(JournalTest, ReopenRecoversEveryDurableRecord) {
  TempDir dir;
  const std::vector<std::uint8_t> big(5000, 0xCD);
  {
    Journal journal(journal_options(dir.sub("journal")));
    journal.open();
    journal.start_writer(3);
    journal.record(1, 10, bytes({0xAA}));
    journal.record(1, 11, big);
    journal.record(2, 10, bytes({}));  // empty payloads are legal
    journal.close();
  }

  // A fresh instance (the standby, or the next incarnation) rebuilds the
  // index from the segment scan alone.
  Journal reopened(journal_options(dir.sub("journal")));
  reopened.open();
  EXPECT_EQ(reopened.size(), 3u);
  EXPECT_EQ(reopened.stats().recovered_records, 3u);

  std::vector<std::uint8_t> out;
  ASSERT_TRUE(reopened.lookup(1, 11, out));
  EXPECT_EQ(out, big);
  ASSERT_TRUE(reopened.lookup(2, 10, out));
  EXPECT_TRUE(out.empty());
}

TEST(JournalTest, TornTailIsQuarantinedAndValidPrefixSurvives) {
  TempDir dir;
  {
    Journal journal(journal_options(dir.sub("journal")));
    journal.open();
    journal.start_writer(1);
    journal.record(5, 1, bytes({1, 2, 3}));
    journal.record(5, 2, bytes({4, 5, 6}));
    journal.close();
  }

  // The writer died mid-append: garbage after the last complete record.
  std::string segment;
  for (const auto& entry : fs::directory_iterator(dir.sub("journal"))) {
    segment = entry.path().string();
  }
  ASSERT_FALSE(segment.empty());
  {
    std::ofstream torn(segment, std::ios::binary | std::ios::app);
    const char junk[11] = "TRJRjunk!!";
    torn.write(junk, 10);
  }

  // Becoming the writer quarantines the unreadable tail and keeps serving
  // the valid prefix; new appends land after it.
  Journal next(journal_options(dir.sub("journal")));
  next.open();
  next.start_writer(2);
  EXPECT_EQ(next.stats().recovered_records, 2u);
  EXPECT_EQ(next.stats().quarantined_bytes, 10u);

  bool quarantine_seen = false;
  for (const auto& entry : fs::directory_iterator(dir.sub("journal"))) {
    if (entry.path().string().ends_with(".quarantine")) {
      quarantine_seen = true;
    }
  }
  EXPECT_TRUE(quarantine_seen);

  std::vector<std::uint8_t> out;
  ASSERT_TRUE(next.lookup(5, 1, out));
  EXPECT_EQ(out, bytes({1, 2, 3}));
  next.record(5, 3, bytes({7, 8, 9}));
  ASSERT_TRUE(next.lookup(5, 3, out));
  EXPECT_EQ(out, bytes({7, 8, 9}));
  next.close();
}

TEST(JournalTest, DuplicateAcrossRotationFirstRecordWins) {
  TempDir dir;
  {
    // max_segment_bytes=1 forces a rotation on every append after the
    // first, so the duplicate pair lands in a *different* segment.
    Journal journal(journal_options(dir.sub("journal"), 1));
    journal.open();
    journal.start_writer(1);
    journal.record(7, 1, bytes({0x0A}));
    journal.record(7, 1, bytes({0x0B}));  // later copy of the same pair
    EXPECT_GE(journal.stats().rotations, 1u);
    journal.close();
  }

  Journal reopened(journal_options(dir.sub("journal"), 1));
  reopened.open();
  // Scan order is segment order: the first record is the one replays serve.
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(reopened.lookup(7, 1, out));
  EXPECT_EQ(out, bytes({0x0A}));
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_GE(reopened.stats().duplicate_records, 1u);
  EXPECT_GE(reopened.stats().segments, 2u);
}

TEST(JournalTest, LookupRejectsDamagedBytes) {
  TempDir dir;
  {
    Journal journal(journal_options(dir.sub("journal")));
    journal.open();
    journal.start_writer(1);
    journal.record(3, 1, bytes({10, 20, 30, 40}));
    journal.close();
  }

  Journal reopened(journal_options(dir.sub("journal")));
  reopened.open();
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(reopened.lookup(3, 1, out));

  // Flip one payload byte on disk after the index was built: the replay
  // pread re-verifies the checksum and treats the record as unknown rather
  // than serving damaged bytes.
  std::string segment;
  for (const auto& entry : fs::directory_iterator(dir.sub("journal"))) {
    if (!entry.path().string().ends_with(".quarantine")) {
      segment = entry.path().string();
    }
  }
  ASSERT_FALSE(segment.empty());
  {
    std::fstream f(segment, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(kJournalRecordHeaderBytes) + 1);
    const char flipped = 0x7F;
    f.write(&flipped, 1);
  }
  EXPECT_FALSE(reopened.lookup(3, 1, out));
}

TEST(JournalTest, RecordOutsideWriterModeThrows) {
  TempDir dir;
  Journal journal(journal_options(dir.sub("journal")));
  journal.open();
  EXPECT_THROW(journal.record(1, 1, bytes({1})), JournalError);
  EXPECT_FALSE(journal.writing());
}

// ---------------------------------------------------------------------------
// Journal-backed Server: exactly-once across a process-analogue boundary

TEST(JournalServerTest, RetryAgainstSuccessorReplaysBitIdentically) {
  TempDir dir;
  const gen::ReferenceGraph reference = gen::complete(16);
  const service::Request request = count_request(share(reference.edges));

  transport::ClientOptions copts;
  copts.client_id = 777;  // fixed so the retry is the same logical client
  service::Response first;

  // Incarnation one: the active coordinator's server records through the
  // journal, then "dies" (everything torn down, only the directory left).
  {
    Journal journal(journal_options(dir.sub("journal")));
    journal.open();
    journal.start_writer(1);
    service::TriangleService svc(light_service());
    transport::ServerOptions sopts;
    sopts.journal = &journal;
    transport::Server server(svc, sopts);
    server.start();

    copts.port = server.port();
    transport::Client client(copts);
    first = client.execute_with_id(request, 42);
    ASSERT_EQ(first.status, service::Status::kOk) << first.reason;
    ASSERT_EQ(first.triangles, reference.expected_triangles);
    EXPECT_GE(journal.stats().appends, 1u);
    server.stop();
    journal.close();
  }

  // Incarnation two: a different Server + service over the same journal.
  // The retried id replays the durable record — the service never executes.
  Journal journal(journal_options(dir.sub("journal")));
  journal.open();
  journal.start_writer(2);
  service::TriangleService svc(light_service());
  transport::ServerOptions sopts;
  sopts.journal = &journal;
  transport::Server server(svc, sopts);
  server.start();

  copts.port = server.port();
  transport::Client client(copts);
  const service::Response replayed = client.execute_with_id(request, 42);
  EXPECT_EQ(replayed.status, first.status);
  EXPECT_EQ(replayed.triangles, first.triangles);
  EXPECT_EQ(replayed.backend, first.backend);
  EXPECT_EQ(server.stats().journal_replays, 1u);
  EXPECT_EQ(server.stats().duplicates, 1u);
  EXPECT_EQ(svc.metrics().submitted, 0u) << "replay must not re-execute";
  server.stop();
  journal.close();
}

// ---------------------------------------------------------------------------
// Multi-endpoint Client failover

TEST(MultiEndpointTest, ConnectRefusedHopsWithoutBurningRetryBudget) {
  service::TriangleService svc(light_service());
  transport::Server live(svc);
  live.start();

  // A port that refuses connections: bind+close an ephemeral listener.
  transport::Server parked(svc);
  parked.start();
  const std::uint16_t dead_port = parked.port();
  parked.stop();

  transport::ClientOptions copts;
  copts.endpoints = {{"127.0.0.1", dead_port}, {"127.0.0.1", live.port()}};
  copts.max_attempts = 1;  // hops must not consume the attempt budget
  transport::Client client(copts);

  const gen::ReferenceGraph reference = gen::complete(10);
  const service::Response response =
      client.execute(count_request(share(reference.edges)));
  ASSERT_EQ(response.status, service::Status::kOk) << response.reason;
  EXPECT_EQ(response.triangles, reference.expected_triangles);
}

TEST(MultiEndpointTest, DrainingEndpointFailsOverToPeer) {
  service::TriangleService drain_svc(light_service());
  service::TriangleService live_svc(light_service());
  transport::Server draining(drain_svc);
  draining.start();
  transport::Server live(live_svc);
  live.start();

  transport::ClientOptions copts;
  copts.endpoints = {{"127.0.0.1", draining.port()},
                     {"127.0.0.1", live.port()}};
  copts.max_attempts = 1;
  transport::Client client(copts);

  // Establish the connection to the first endpoint while it is healthy —
  // the hop under test is the *retryable drain reject on a live
  // connection*, not a refused connect.
  const gen::ReferenceGraph reference = gen::complete(11);
  const service::Response warm =
      client.execute(count_request(share(reference.edges)));
  ASSERT_EQ(warm.status, service::Status::kOk) << warm.reason;

  // Pin the drain mid-flight: a raw connection holds one request on the
  // paused service, so drain() blocks with connections still open.
  drain_svc.pause();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(draining.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  transport::PayloadWriter hello;
  hello.u64(99);
  transport::send_frame(fd, transport::FrameType::kHello, 0, hello.data());
  transport::Frame ack;
  ASSERT_TRUE(transport::recv_frame(fd, ack));
  transport::send_frame(fd, transport::FrameType::kRequest, 1,
                        transport::encode_request(
                            count_request(share(reference.edges))));
  while (draining.stats().requests < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread drainer([&] { draining.drain(); });
  while (!draining.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Mid-drain, the client's request is refused retryably and hops to the
  // live peer without burning its single attempt.
  const service::Response response =
      client.execute(count_request(share(reference.edges)));
  ASSERT_EQ(response.status, service::Status::kOk) << response.reason;
  EXPECT_EQ(response.triangles, reference.expected_triangles);
  EXPECT_GE(draining.stats().drained_rejects, 1u);
  EXPECT_GE(live.stats().requests, 1u);

  drain_svc.resume();
  drainer.join();
  util::io::close_quiet(fd);
}

TEST(MultiEndpointTest, NotLeaderRedirectFollowsTheHint) {
  service::TriangleService svc(light_service());
  transport::Server leader(svc);
  leader.start();

  // A standby that knows where the leader is: every request is refused
  // with a kNotLeader hint naming the leader's port.
  std::atomic<std::uint16_t> leader_port{leader.port()};
  service::TriangleService standby_svc(light_service());
  transport::ServerOptions standby_options;
  standby_options.leadership = [&]() {
    transport::LeaderView view;
    view.leading = false;
    view.epoch = 5;
    view.leader_host = "127.0.0.1";
    view.leader_port = leader_port.load();
    return view;
  };
  transport::Server standby(standby_svc, standby_options);
  standby.start();

  transport::ClientOptions copts;
  copts.endpoints = {{"127.0.0.1", standby.port()}};
  copts.max_attempts = 1;
  transport::Client client(copts);

  const gen::ReferenceGraph reference = gen::complete(12);
  const service::Response response =
      client.execute(count_request(share(reference.edges)));
  ASSERT_EQ(response.status, service::Status::kOk) << response.reason;
  EXPECT_EQ(response.triangles, reference.expected_triangles);
  EXPECT_GE(standby.stats().not_leader_rejects, 1u);
  EXPECT_EQ(standby_svc.metrics().submitted, 0u);
  EXPECT_GE(leader.stats().requests, 1u);

  // The redirect surfaces as a typed error when there is nowhere to go:
  // a hint-less standby with no other endpoint.
  standby_options.leadership = [] {
    transport::LeaderView view;
    view.leading = false;
    return view;
  };
  transport::Server lost(standby_svc, standby_options);
  lost.start();
  transport::ClientOptions solo;
  solo.endpoints = {{"127.0.0.1", lost.port()}};
  solo.max_attempts = 1;
  transport::Client stuck(solo);
  try {
    (void)stuck.execute(count_request(share(reference.edges)));
    FAIL() << "expected kNotLeader";
  } catch (const transport::TransportError& error) {
    EXPECT_EQ(error.fault(), transport::TransportFault::kNotLeader);
  }
}

// ---------------------------------------------------------------------------
// Worker-side fencing

TEST(FencingTest, StaleEpochIsRefusedAndTheWatermarkIsMonotone) {
  service::TriangleService svc(light_service());
  transport::ServerOptions sopts;
  sopts.fence_epoch = [] { return std::uint64_t{5}; };
  transport::Server server(svc, sopts);
  server.start();

  transport::ClientOptions copts;
  copts.port = server.port();
  copts.max_attempts = 1;
  transport::Client client(copts);

  const gen::ReferenceGraph reference = gen::complete(9);
  service::Request request = count_request(share(reference.edges));

  // Below the lease-file floor: refused non-retryably.
  request.lease_epoch = 3;
  try {
    (void)client.execute(request);
    FAIL() << "expected a fencing reject";
  } catch (const transport::TransportError& error) {
    EXPECT_EQ(error.fault(), transport::TransportFault::kProtocol);
    EXPECT_NE(std::string(error.what()).find("fenced"), std::string::npos);
  }
  EXPECT_EQ(server.stats().fenced_rejects, 1u);

  // At/above the floor: served, and the stamp raises the watermark.
  request.lease_epoch = 9;
  service::Response response = client.execute(request);
  ASSERT_EQ(response.status, service::Status::kOk) << response.reason;
  EXPECT_EQ(response.triangles, reference.expected_triangles);

  // 7 beats the lease floor (5) but not the highest stamp seen (9): a
  // deposed coordinator cannot slip in between lease-file polls.
  request.lease_epoch = 7;
  EXPECT_THROW((void)client.execute(request), transport::TransportError);
  EXPECT_EQ(server.stats().fenced_rejects, 2u);

  // Unstamped requests (no HA deployment) are untouched by the fence.
  request.lease_epoch = 0;
  response = client.execute(request);
  EXPECT_EQ(response.status, service::Status::kOk);
}

// ---------------------------------------------------------------------------
// Bounded in-memory dedup

TEST(DedupLruTest, CompletedEntriesAreEvictedPastTheCap) {
  service::TriangleService svc(light_service());
  transport::ServerOptions sopts;
  sopts.dedup_capacity = 4;
  transport::Server server(svc, sopts);
  server.start();

  transport::ClientOptions copts;
  copts.port = server.port();
  transport::Client client(copts);

  const gen::ReferenceGraph reference = gen::complete(8);
  const service::Request request = count_request(share(reference.edges));
  for (std::uint64_t id = 1; id <= 10; ++id) {
    const service::Response r = client.execute_with_id(request, id);
    ASSERT_EQ(r.status, service::Status::kOk) << r.reason;
  }

  const transport::ServerStats stats = server.stats();
  EXPECT_LE(stats.dedup_entries, 4u);
  EXPECT_GE(stats.dedup_evictions, 6u);
  EXPECT_GT(stats.dedup_bytes, 0u);

  // A recent id still replays from the cache; duplicates never re-execute.
  const std::uint64_t executed = svc.metrics().submitted;
  const service::Response replay = client.execute_with_id(request, 10);
  EXPECT_EQ(replay.triangles, reference.expected_triangles);
  EXPECT_EQ(svc.metrics().submitted, executed);
  EXPECT_GE(server.stats().duplicates, 1u);
}

TEST(DedupLruTest, ByteBudgetBoundsTheCacheIndependently) {
  service::TriangleService svc(light_service());
  transport::ServerOptions sopts;
  sopts.dedup_capacity = 1 << 20;  // entry cap out of the way
  sopts.dedup_byte_budget = 1;     // every completed payload busts it
  transport::Server server(svc, sopts);
  server.start();

  transport::ClientOptions copts;
  copts.port = server.port();
  transport::Client client(copts);
  const service::Request request =
      count_request(share(gen::complete(8).edges));
  for (std::uint64_t id = 1; id <= 3; ++id) {
    ASSERT_EQ(client.execute_with_id(request, id).status,
              service::Status::kOk);
  }
  const transport::ServerStats stats = server.stats();
  EXPECT_GE(stats.dedup_evictions, 2u);
  EXPECT_LE(stats.dedup_bytes, 1u);
}

// ---------------------------------------------------------------------------
// HaCoordinator over real worker processes

#ifdef TRICO_CLI_PATH

HaNodeOptions ha_node_options(const TempDir& dir, bool standby,
                              double ttl_ms) {
  HaNodeOptions options;
  options.coordinator.supervisor.cli_path = TRICO_CLI_PATH;
  options.coordinator.supervisor.num_workers = 2;
  options.coordinator.supervisor.monitor_period_ms = 20;
  options.coordinator.supervisor.client.max_attempts = 4;
  options.coordinator.supervisor.client.backoff_initial_ms = 5;
  options.coordinator.supervisor.client.backoff_max_ms = 100;
  options.coordinator.supervisor.client.seed = 20260808;
  // Workers fence on the shared lease file.
  options.coordinator.supervisor.worker_args = {"--lease", dir.sub("lease")};
  options.coordinator.scatter_edge_threshold = 64;  // everything scatters
  options.lease_path = dir.sub("lease");
  options.journal_dir = dir.sub("journal");
  options.lease_ttl_ms = ttl_ms;
  options.standby = standby;
  return options;
}

bool wait_until(const std::function<bool()>& done, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return done();
}

TEST(HaProcessTest, PausedLeaderIsStolenAndItsStaleScattersAreFenced) {
  TempDir dir;
  const double ttl = 250;
  HaCoordinator active(ha_node_options(dir, false, ttl));
  HaCoordinator standby(ha_node_options(dir, true, ttl));

  active.start();
  ASSERT_TRUE(active.wait_leading(5000));
  standby.start();
  EXPECT_FALSE(standby.leading());
  const std::uint64_t active_epoch = active.epoch();
  EXPECT_GE(active_epoch, 1u);

  const gen::ReferenceGraph reference = gen::windmill(5, 8);
  const auto graph = share(reference.edges);

  // The active pair serves exact counts while healthy.
  service::Response healthy = active.submit(count_request(graph)).wait();
  ASSERT_EQ(healthy.status, service::Status::kOk) << healthy.reason;
  EXPECT_EQ(healthy.triangles, reference.expected_triangles);

  // Freeze the leader's lease loop past the TTL — the in-process analogue
  // of SIGSTOP. The standby steals the lease at a strictly higher epoch.
  active.pause_lease_for_test();
  ASSERT_TRUE(standby.wait_leading(8000));
  EXPECT_GT(standby.epoch(), active_epoch);
  EXPECT_GE(standby.stats().promotions, 1u);

  // The new leader serves exact counts immediately (its pool was warm).
  service::Response promoted = standby.submit(count_request(graph)).wait();
  ASSERT_EQ(promoted.status, service::Status::kOk) << promoted.reason;
  EXPECT_EQ(promoted.triangles, reference.expected_triangles);

  // The deposed leader still *believes* it leads (paused, epoch cell
  // untouched) — but its scatter frames carry the stale epoch and every
  // worker refuses them: no stale gather can complete, let alone
  // double-count against the new leader's.
  service::Response fenced = active.submit(count_request(graph)).wait();
  EXPECT_NE(fenced.status, service::Status::kOk)
      << "a stale-epoch scatter must not be served";
  EXPECT_NE(fenced.reason.find("fenced"), std::string::npos)
      << "reason: " << fenced.reason;

  // On resume the failed renewal demotes it; the stale epoch is retained.
  active.resume_lease_for_test();
  EXPECT_TRUE(wait_until([&] { return active.stats().demotions >= 1; }, 5000));
  EXPECT_FALSE(active.leading());
  EXPECT_EQ(active.epoch(), active_epoch);
  EXPECT_TRUE(standby.leading());

  // The HA block lands in the metrics snapshot on both sides.
  const service::MetricsSnapshot a = active.metrics();
  EXPECT_TRUE(a.ha_enabled);
  EXPECT_FALSE(a.ha_leading);
  EXPECT_GE(a.ha_demotions, 1u);
  const service::MetricsSnapshot s = standby.metrics();
  EXPECT_TRUE(s.ha_leading);
  EXPECT_GE(s.ha_promotions, 1u);
  EXPECT_NE(s.to_string().find("ha: leading=1"), std::string::npos);

  standby.stop();
  active.stop();
}

TEST(HaProcessTest, RetryAfterPromotionReplaysFromTheJournal) {
  TempDir dir;
  const double ttl = 250;
  HaCoordinator active(ha_node_options(dir, false, ttl));
  HaCoordinator standby(ha_node_options(dir, true, ttl));

  active.start();
  ASSERT_TRUE(active.wait_leading(5000));
  standby.start();

  // Front each node with a Server wired exactly like `trico_cli
  // coordinator --lease --journal`: journal-backed dedup + leadership gate.
  transport::ServerOptions active_sopts;
  active_sopts.journal = &active.journal();
  active_sopts.leadership = [&active] { return active.leader_view(); };
  transport::Server active_server(active, active_sopts);
  active_server.start();
  active.set_advertised_port(active_server.port());

  transport::ServerOptions standby_sopts;
  standby_sopts.journal = &standby.journal();
  standby_sopts.leadership = [&standby] { return standby.leader_view(); };
  transport::Server standby_server(standby, standby_sopts);
  standby_server.start();
  standby.set_advertised_port(standby_server.port());

  const gen::ReferenceGraph reference = gen::windmill(4, 6);
  const service::Request request = count_request(share(reference.edges));

  transport::ClientOptions copts;
  copts.client_id = 4242;
  copts.endpoints = {{"127.0.0.1", active_server.port()},
                     {"127.0.0.1", standby_server.port()}};
  copts.seed = 7;

  service::Response first;
  {
    transport::Client client(copts);
    first = client.execute_with_id(request, 99);
    ASSERT_EQ(first.status, service::Status::kOk) << first.reason;
    ASSERT_EQ(first.triangles, reference.expected_triangles);
  }

  // The active dies: server gone (its port now refuses connections), node
  // torn down. The standby takes the lease and promotes.
  active_server.stop();
  active.stop();
  ASSERT_TRUE(standby.wait_leading(8000));
  EXPECT_GE(standby.stats().promotions, 1u);

  // The same logical client retries the same id. The first endpoint is
  // dead, so the client hops to the standby without burning its retry
  // budget; the journal — tailed by the standby all along — replays the
  // recorded response bit-identically without re-executing anything.
  copts.max_attempts = 1;
  transport::Client retry(copts);
  const service::Response replayed = retry.execute_with_id(request, 99);
  EXPECT_EQ(replayed.status, first.status);
  EXPECT_EQ(replayed.triangles, first.triangles);
  EXPECT_EQ(replayed.backend, first.backend);
  EXPECT_GE(standby_server.stats().journal_replays, 1u);
  EXPECT_GE(standby.stats().journal.replays, 1u);

  standby_server.stop();
  standby.stop();
}

#endif  // TRICO_CLI_PATH

}  // namespace
}  // namespace trico::cluster::ha
