// Integration tests for the GPU pipeline: the simulated-device count must
// equal the CPU forward count on every graph, under every §III-D option
// toggle, on every device preset, with and without sampling.

#include <gtest/gtest.h>

#include "core/gpu_forward.hpp"
#include "core/preprocess.hpp"
#include "cpu/counting.hpp"
#include "gen/generators.hpp"
#include "gen/reference.hpp"

namespace trico::core {
namespace {

simt::DeviceConfig small_device() {
  // A scaled-down device keeps full (non-sampled) simulations fast in tests.
  simt::DeviceConfig config = simt::DeviceConfig::gtx_980();
  config.num_sms = 4;
  return config;
}

TEST(GpuPipelineTest, MatchesClosedFormsOnReferenceFamilies) {
  GpuForwardCounter counter(small_device());
  for (const gen::ReferenceGraph& g : gen::all_small_references()) {
    const GpuCountResult result = counter.count(g.edges);
    EXPECT_EQ(result.triangles, g.expected_triangles) << g.family;
  }
}

TEST(GpuPipelineTest, MatchesCpuForwardOnRandomGraphs) {
  GpuForwardCounter counter(small_device());
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const EdgeList g = gen::erdos_renyi(500, 4000, seed);
    EXPECT_EQ(counter.count(g).triangles, cpu::count_forward(g));
  }
}

TEST(GpuPipelineTest, MatchesCpuForwardOnSkewedGraphs) {
  gen::RmatParams params;
  params.scale = 10;
  params.edge_factor = 8;
  const EdgeList g = gen::rmat(params, 3);
  GpuForwardCounter counter(small_device());
  EXPECT_EQ(counter.count(g).triangles, cpu::count_forward(g));
}

TEST(GpuPipelineTest, EmptyGraph) {
  GpuForwardCounter counter(small_device());
  EXPECT_EQ(counter.count(EdgeList{}).triangles, 0u);
}

TEST(GpuPipelineTest, TriangleFreeGraph) {
  GpuForwardCounter counter(small_device());
  const gen::ReferenceGraph g = gen::grid(10, 10);
  EXPECT_EQ(counter.count(g.edges).triangles, 0u);
}

TEST(GpuPipelineTest, OrientedEdgeCountIsHalfOfSlots) {
  GpuForwardCounter counter(small_device());
  const EdgeList g = gen::erdos_renyi(200, 1000, 9);
  const GpuCountResult result = counter.count(g);
  EXPECT_EQ(result.oriented_edges, g.num_edges());
  EXPECT_EQ(result.input_slots, 2 * g.num_edges());
}

TEST(GpuPipelineTest, PhaseTimesArePositiveAndSum) {
  GpuForwardCounter counter(small_device());
  const EdgeList g = gen::barabasi_albert(500, 5, 1);
  const GpuCountResult r = counter.count(g);
  EXPECT_GT(r.phases.h2d_ms, 0.0);
  EXPECT_GT(r.phases.sort_ms, 0.0);
  EXPECT_GT(r.phases.counting_ms, 0.0);
  EXPECT_NEAR(r.phases.total_ms(),
              r.phases.preprocessing_ms() + r.phases.counting_ms +
                  r.phases.reduce_ms + r.phases.d2h_ms,
              1e-12);
  EXPECT_GT(r.phases.preprocessing_fraction(), 0.0);
  EXPECT_LT(r.phases.preprocessing_fraction(), 1.0);
}

// Every §III-D toggle combination must preserve the count.
struct VariantCase {
  const char* name;
  bool soa;
  bool final_loop;
  bool readonly;
  bool sort_u64;
};

class VariantTest : public ::testing::TestWithParam<VariantCase> {};

TEST_P(VariantTest, CountIsVariantInvariant) {
  const VariantCase& c = GetParam();
  CountingOptions options;
  options.variant.soa = c.soa;
  options.variant.final_loop = c.final_loop;
  options.variant.readonly_qualifier = c.readonly;
  options.sort_as_u64 = c.sort_u64;
  GpuForwardCounter counter(small_device(), options);
  const EdgeList g = gen::watts_strogatz(400, 4, 0.1, 5);
  EXPECT_EQ(counter.count(g).triangles, cpu::count_forward(g));
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VariantTest,
    ::testing::Values(VariantCase{"paper_final", true, true, true, true},
                      VariantCase{"aos", false, true, true, true},
                      VariantCase{"preliminary_loop", true, false, true, true},
                      VariantCase{"no_readonly", true, true, false, true},
                      VariantCase{"pair_sort", true, true, true, false},
                      VariantCase{"all_off", false, false, false, false}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(GpuPipelineTest, AllDevicePresetsAgree) {
  const EdgeList g = gen::erdos_renyi(300, 2000, 11);
  const TriangleCount expected = cpu::count_forward(g);
  for (const auto& config :
       {simt::DeviceConfig::tesla_c2050(), simt::DeviceConfig::gtx_980(),
        simt::DeviceConfig::nvs_5200m()}) {
    GpuForwardCounter counter(config);
    EXPECT_EQ(counter.count(g).triangles, expected) << config.name;
  }
}

TEST(GpuPipelineTest, SamplingPreservesCountAndApproximatesTime) {
  const EdgeList g = gen::barabasi_albert(2000, 8, 4);
  CountingOptions full_options;
  GpuForwardCounter full(simt::DeviceConfig::gtx_980(), full_options);
  const GpuCountResult full_result = full.count(g);

  CountingOptions sampled_options;
  sampled_options.sim.sample_sms = 4;
  GpuForwardCounter sampled(simt::DeviceConfig::gtx_980(), sampled_options);
  const GpuCountResult sampled_result = sampled.count(g);

  EXPECT_EQ(sampled_result.triangles, full_result.triangles);
  EXPECT_GT(sampled_result.phases.counting_ms,
            full_result.phases.counting_ms * 0.3);
  EXPECT_LT(sampled_result.phases.counting_ms,
            full_result.phases.counting_ms * 3.0);
}

TEST(GpuPipelineTest, CpuPreprocessFallbackTriggersOnSmallDevice) {
  simt::DeviceConfig config = small_device();
  // Shrink memory so the full preprocessing cannot fit but counting can.
  const EdgeList g = gen::erdos_renyi(1000, 20000, 8);
  config.memory_bytes = GpuForwardCounter::device_preprocess_bytes(
                            g.num_edge_slots(), g.num_vertices()) -
                        1;
  GpuForwardCounter counter(config);
  const GpuCountResult result = counter.count(g);
  EXPECT_TRUE(result.used_cpu_preprocessing);
  EXPECT_GT(result.phases.cpu_preprocess_ms, 0.0);
  EXPECT_EQ(result.triangles, cpu::count_forward(g));
}

TEST(GpuPipelineTest, ForcedCpuPreprocessMatches) {
  CountingOptions options;
  options.force_cpu_preprocess = true;
  GpuForwardCounter counter(small_device(), options);
  const EdgeList g = gen::erdos_renyi(300, 2500, 2);
  const GpuCountResult result = counter.count(g);
  EXPECT_TRUE(result.used_cpu_preprocessing);
  EXPECT_EQ(result.triangles, cpu::count_forward(g));
}

TEST(GpuPipelineTest, KernelStatsAreConsistent) {
  GpuForwardCounter counter(small_device());
  const EdgeList g = gen::erdos_renyi(500, 5000, 6);
  const GpuCountResult r = counter.count(g);
  const auto& mem = r.kernel.memory;
  EXPECT_EQ(mem.transactions, mem.sm_cache_accesses)
      << "all counting loads are read-only eligible by default";
  EXPECT_EQ(mem.l2_accesses, mem.sm_cache_accesses - mem.sm_cache_hits);
  EXPECT_EQ(mem.dram_lines, mem.l2_accesses - mem.l2_hits);
  EXPECT_GT(r.kernel.cache_hit_rate(), 0.0);
  EXPECT_LE(r.kernel.cache_hit_rate(), 1.0);
  EXPECT_GE(r.kernel.cycles,
            std::max({r.kernel.issue_cycles, r.kernel.latency_cycles,
                      r.kernel.bandwidth_cycles}) -
                1e-9);
}

TEST(PreprocessTest, NodeArrayBracketsAreCorrect) {
  prim::ThreadPool pool(2);
  const EdgeList g = gen::erdos_renyi(100, 500, 1);
  CountingOptions options;
  const PreprocessedGraph pre = preprocess_for_device(
      g, simt::DeviceConfig::gtx_980(), options, pool);
  ASSERT_EQ(pre.node.size(), static_cast<std::size_t>(pre.num_vertices) + 1);
  EXPECT_EQ(pre.node.front(), 0u);
  EXPECT_EQ(pre.node.back(), pre.oriented.size());
  for (std::size_t u = 0; u + 1 < pre.node.size(); ++u) {
    EXPECT_LE(pre.node[u], pre.node[u + 1]);
    for (std::uint32_t i = pre.node[u]; i < pre.node[u + 1]; ++i) {
      EXPECT_EQ(pre.oriented[i].u, u);
    }
  }
}

TEST(PreprocessTest, OrientedListsAreSortedAndForward) {
  prim::ThreadPool pool(2);
  const EdgeList g = gen::barabasi_albert(300, 4, 7);
  const std::vector<EdgeIndex> degree = g.degrees();
  CountingOptions options;
  const PreprocessedGraph pre = preprocess_for_device(
      g, simt::DeviceConfig::gtx_980(), options, pool);
  for (std::size_t i = 0; i < pre.oriented.size(); ++i) {
    const Edge& e = pre.oriented[i];
    const bool forward = degree[e.u] != degree[e.v]
                             ? degree[e.u] < degree[e.v]
                             : e.u < e.v;
    EXPECT_TRUE(forward) << "slot " << i;
    if (i > 0 && pre.oriented[i - 1].u == e.u) {
      EXPECT_LT(pre.oriented[i - 1].v, e.v) << "lists must be sorted";
    }
  }
}

TEST(PreprocessTest, SoAMatchesAoS) {
  prim::ThreadPool pool(2);
  const EdgeList g = gen::erdos_renyi(200, 1500, 3);
  CountingOptions options;  // soa on by default
  const PreprocessedGraph pre = preprocess_for_device(
      g, simt::DeviceConfig::gtx_980(), options, pool);
  ASSERT_EQ(pre.soa.size(), pre.oriented.size());
  for (std::size_t i = 0; i < pre.oriented.size(); ++i) {
    EXPECT_EQ(pre.soa.src[i], pre.oriented[i].u);
    EXPECT_EQ(pre.soa.dst[i], pre.oriented[i].v);
  }
}

}  // namespace
}  // namespace trico::core
