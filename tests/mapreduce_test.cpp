// Tests for the MapReduce substrate and the Suri-Vassilvitskii triangle
// algorithms (the paper's §V MapReduce comparison point).

#include <gtest/gtest.h>

#include "cpu/counting.hpp"
#include "gen/generators.hpp"
#include "gen/reference.hpp"
#include "mapreduce/engine.hpp"
#include "mapreduce/triangles.hpp"

namespace trico::mr {
namespace {

ClusterConfig test_cluster() {
  ClusterConfig cluster;
  cluster.num_workers = 8;
  cluster.per_round_overhead_s = 10.0;
  return cluster;
}

TEST(EngineTest, WordCountStyleRound) {
  // Classic sanity: count occurrences of keys.
  const std::vector<std::uint64_t> input{3, 1, 3, 3, 7, 1};
  RoundStats stats;
  const auto counts = run_round<std::uint64_t, std::uint64_t>(
      test_cluster(), input,
      [](std::uint64_t item, const auto& emit) { emit(item, 1); },
      [](std::uint64_t key, std::span<const std::uint64_t> ones,
         const auto& emit) {
        emit(key * 1000 + ones.size());  // encode (key, count)
      },
      stats);
  EXPECT_EQ(stats.map_input_records, 6u);
  EXPECT_EQ(stats.map_output_records, 6u);
  EXPECT_EQ(stats.reduce_groups, 3u);
  ASSERT_EQ(counts.size(), 3u);
  // Groups arrive in ascending key order.
  EXPECT_EQ(counts[0], 1002u);
  EXPECT_EQ(counts[1], 3003u);
  EXPECT_EQ(counts[2], 7001u);
}

TEST(EngineTest, RoundTimeIncludesFixedOverhead) {
  const std::vector<std::uint64_t> input{1};
  RoundStats stats;
  run_round<std::uint64_t, std::uint64_t>(
      test_cluster(), input,
      [](std::uint64_t item, const auto& emit) { emit(item, item); },
      [](std::uint64_t, std::span<const std::uint64_t>, const auto&) {}, stats);
  EXPECT_GE(stats.modeled_s, test_cluster().per_round_overhead_s);
}

TEST(EngineTest, EmptyInput) {
  const std::vector<std::uint64_t> input;
  RoundStats stats;
  const auto out = run_round<std::uint64_t, std::uint64_t>(
      test_cluster(), input,
      [](std::uint64_t item, const auto& emit) { emit(item, item); },
      [](std::uint64_t, std::span<const std::uint64_t>, const auto&) {}, stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.reduce_groups, 0u);
}

TEST(NodeIteratorPpTest, MatchesClosedForms) {
  for (const gen::ReferenceGraph& g : gen::all_small_references()) {
    const MrCountResult r = count_node_iterator_pp(g.edges, test_cluster());
    EXPECT_EQ(r.triangles, g.expected_triangles) << g.family;
    EXPECT_EQ(r.job.rounds.size(), 2u);
  }
}

TEST(NodeIteratorPpTest, MatchesForwardOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const EdgeList g = gen::erdos_renyi(300, 2500, seed);
    EXPECT_EQ(count_node_iterator_pp(g, test_cluster()).triangles,
              cpu::count_forward(g));
  }
}

TEST(NodeIteratorPpTest, NaiveOrderIsExactButSkewed) {
  gen::RmatParams params;
  params.scale = 9;
  params.edge_factor = 8;
  const EdgeList g = gen::rmat(params, 2);
  const MrCountResult ordered = count_node_iterator_pp(g, test_cluster(), true);
  const MrCountResult naive = count_node_iterator_pp(g, test_cluster(), false);
  EXPECT_EQ(ordered.triangles, naive.triangles);
  // The curse of the last reducer: without the degree order, hub pivots
  // blow up the wedge volume and the largest reducer's load.
  EXPECT_GT(naive.job.rounds[0].map_output_records +
                naive.job.rounds[1].map_input_records,
            ordered.job.rounds[0].map_output_records +
                ordered.job.rounds[1].map_input_records);
}

TEST(GraphPartitionTest, MatchesClosedForms) {
  for (const gen::ReferenceGraph& g : gen::all_small_references()) {
    const MrCountResult r = count_graph_partition(g.edges, test_cluster(), 3);
    EXPECT_EQ(r.triangles, g.expected_triangles) << g.family;
    EXPECT_EQ(r.job.rounds.size(), 1u);
  }
}

TEST(GraphPartitionTest, ExactForVariousColorCounts) {
  const EdgeList g = gen::barabasi_albert(400, 5, 7);
  const TriangleCount expected = cpu::count_forward(g);
  for (std::uint32_t k : {1u, 2u, 4u, 6u}) {
    EXPECT_EQ(count_graph_partition(g, test_cluster(), k).triangles, expected)
        << "k = " << k;
  }
}

TEST(GraphPartitionTest, ShuffleVolumeGrowsWithColors) {
  const EdgeList g = gen::erdos_renyi(300, 3000, 5);
  const MrCountResult k2 = count_graph_partition(g, test_cluster(), 2);
  const MrCountResult k6 = count_graph_partition(g, test_cluster(), 6);
  EXPECT_EQ(k2.triangles, k6.triangles);
  EXPECT_GT(k6.job.rounds[0].map_output_records,
            k2.job.rounds[0].map_output_records);
}

TEST(MapReduceTest, ClusterTimeIsMinutesNotMilliseconds) {
  // The paper's §V observation at moderate scale: round overhead dominates.
  const EdgeList g = gen::erdos_renyi(500, 5000, 9);
  ClusterConfig cluster;  // defaults: 25 s/round
  const MrCountResult r = count_node_iterator_pp(g, cluster);
  EXPECT_GE(r.job.total_s(), 50.0) << "two rounds of fixed overhead";
}

}  // namespace
}  // namespace trico::mr
