// Adaptive hybrid intersection engine: every strategy must count exactly,
// the parallel preprocessing must be bit-identical for any thread count
// (and, with relabeling off, identical to the sequential oriented_csr), and
// the adversarial shapes (stars, cliques, tie-break-only degree
// distributions, graphs crossing both dispatch thresholds) must not shake
// any of that.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "cpu/counting.hpp"
#include "cpu/hybrid.hpp"
#include "cpu/hybrid_engine.hpp"
#include "gen/generators.hpp"
#include "graph/orientation.hpp"

namespace trico {
namespace {

using cpu::EngineOptions;
using cpu::IntersectStrategy;

/// One modest instance of every generator family in src/gen/.
std::vector<std::pair<std::string, EdgeList>> generator_matrix(std::uint64_t seed) {
  std::vector<std::pair<std::string, EdgeList>> graphs;
  graphs.emplace_back("erdos_renyi", gen::erdos_renyi(300, 1800, seed));
  {
    gen::RmatParams params;
    params.scale = 9;
    params.edge_factor = 8;
    graphs.emplace_back("rmat", gen::rmat(params, seed));
  }
  graphs.emplace_back("barabasi_albert", gen::barabasi_albert(300, 4, seed));
  graphs.emplace_back("watts_strogatz",
                      gen::watts_strogatz(300, 4, 0.15, seed));
  {
    gen::SocialParams params;
    params.n = 300;
    params.attach = 4;
    graphs.emplace_back("social", gen::social(params, seed));
  }
  {
    gen::CopaperParams params;
    params.n = 200;
    params.papers = 150;
    params.max_authors = 10;
    graphs.emplace_back("copaper", gen::copaper(params, seed));
  }
  return graphs;
}

/// Star K_{1,n-1}: one hub (maximum degree skew).
EdgeList star(VertexId n) {
  std::vector<Edge> pairs;
  for (VertexId v = 1; v < n; ++v) pairs.push_back(Edge{0, v});
  return EdgeList::from_undirected_pairs(pairs, n);
}

/// Clique K_n: every degree equal — orientation is pure tie-breaking.
EdgeList clique(VertexId n) {
  std::vector<Edge> pairs;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) pairs.push_back(Edge{u, v});
  }
  return EdgeList::from_undirected_pairs(pairs, n);
}

/// Cycle C_n: every degree 2 — another all-ties shape, zero triangles for
/// n > 3.
EdgeList cycle(VertexId n) {
  std::vector<Edge> pairs;
  for (VertexId v = 0; v < n; ++v) pairs.push_back(Edge{v, (v + 1) % n});
  return EdgeList::from_undirected_pairs(pairs, n);
}

/// A graph engineered to cross BOTH dispatch thresholds at once: a clique
/// core (high oriented degrees -> bitmap rows), plus star spokes from one
/// core vertex to many leaves (maximum pair skew -> galloping), plus a
/// sparse ring over the leaves (balanced short pairs -> merge).
EdgeList threshold_crosser() {
  std::vector<Edge> pairs;
  const VertexId core = 40, leaves = 400;
  for (VertexId u = 0; u < core; ++u) {
    for (VertexId v = u + 1; v < core; ++v) pairs.push_back(Edge{u, v});
  }
  for (VertexId v = 0; v < leaves; ++v) pairs.push_back(Edge{0, core + v});
  for (VertexId v = 0; v < leaves; ++v) {
    pairs.push_back(Edge{core + v, core + ((v + 1) % leaves)});
  }
  return EdgeList::from_undirected_pairs(pairs, core + leaves);
}

std::vector<std::pair<std::string, EdgeList>> adversarial_matrix() {
  std::vector<std::pair<std::string, EdgeList>> graphs;
  graphs.emplace_back("star", star(1000));
  graphs.emplace_back("clique", clique(40));
  graphs.emplace_back("cycle", cycle(500));
  graphs.emplace_back("empty", EdgeList());
  graphs.emplace_back("isolated_vertices", EdgeList({}, 25));
  graphs.emplace_back("two_triangles",
                      EdgeList::from_undirected_pairs(
                          std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}, {3, 4},
                                            {4, 5}, {3, 5}},
                          6));
  graphs.emplace_back("threshold_crosser", threshold_crosser());
  return graphs;
}

/// Engine option sets that must all produce the exact count: the default
/// adaptive config, forced single strategies, relabeling off, thresholds
/// tuned so every strategy actually fires, and a bitmap budget of one word
/// so the budget fallback executes.
std::vector<std::pair<std::string, EngineOptions>> option_matrix() {
  std::vector<std::pair<std::string, EngineOptions>> options;
  options.emplace_back("adaptive_default", EngineOptions{});
  {
    EngineOptions o;
    o.strategy = IntersectStrategy::kMergeOnly;
    options.emplace_back("merge_only", o);
  }
  {
    EngineOptions o;
    o.strategy = IntersectStrategy::kGallopOnly;
    options.emplace_back("gallop_only", o);
  }
  {
    EngineOptions o;
    o.skew_threshold = 1.5;
    o.bitmap_threshold = 4;
    options.emplace_back("aggressive_thresholds", o);
  }
  {
    EngineOptions o;
    o.relabel_by_degree = false;
    options.emplace_back("no_relabel", o);
  }
  {
    EngineOptions o;
    o.bitmap_threshold = 4;
    o.bitmap_word_budget = 1;
    options.emplace_back("starved_bitmap_budget", o);
  }
  return options;
}

class HybridEngineMatrixTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HybridEngineMatrixTest, EveryStrategyMatchesTheBaselinesOnEveryGenerator) {
  prim::ThreadPool pool(3);
  for (const auto& [name, g] : generator_matrix(GetParam())) {
    const TriangleCount expected = cpu::count_forward(g);
    ASSERT_EQ(cpu::count_forward_binary_search(g), expected) << name;
    for (const auto& [oname, opts] : option_matrix()) {
      EXPECT_EQ(cpu::count_engine(g, pool, opts).triangles, expected)
          << name << " / " << oname;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridEngineMatrixTest,
                         ::testing::Values<std::uint64_t>(1, 2, 3));

TEST(HybridEngineAdversarialTest, EveryStrategyMatchesOnAdversarialShapes) {
  prim::ThreadPool pool(4);
  for (const auto& [name, g] : adversarial_matrix()) {
    const TriangleCount expected = cpu::count_forward(g);
    ASSERT_EQ(cpu::count_forward_binary_search(g), expected) << name;
    for (const auto& [oname, opts] : option_matrix()) {
      EXPECT_EQ(cpu::count_engine(g, pool, opts).triangles, expected)
          << name << " / " << oname;
    }
  }
}

TEST(HybridEngineAdversarialTest, ThresholdCrosserExercisesAllThreeStrategies) {
  prim::ThreadPool pool(2);
  EngineOptions opts;
  opts.skew_threshold = 2.0;
  opts.bitmap_threshold = 16;
  const cpu::EngineResult r =
      cpu::count_engine(threshold_crosser(), pool, opts);
  EXPECT_GT(r.counting.merge_edges, 0u);
  EXPECT_GT(r.counting.gallop_edges, 0u);
  EXPECT_GT(r.counting.bitmap_edges, 0u);
  EXPECT_EQ(r.triangles, cpu::count_forward(threshold_crosser()));
}

TEST(HybridEnginePreprocessTest, ParallelPreprocessingIsBitIdenticalAcrossThreadCounts) {
  for (const auto& [name, g] : generator_matrix(7)) {
    prim::ThreadPool reference_pool(1);
    const cpu::PreparedGraph reference = cpu::prepare(g, reference_pool);
    for (std::size_t threads : {2u, 3u, 8u}) {
      prim::ThreadPool pool(threads);
      const cpu::PreparedGraph prepared = cpu::prepare(g, pool);
      ASSERT_TRUE(std::ranges::equal(prepared.oriented.offsets(),
                                     reference.oriented.offsets()))
          << name << " @ " << threads;
      ASSERT_TRUE(std::ranges::equal(prepared.oriented.neighbor_array(),
                                     reference.oriented.neighbor_array()))
          << name << " @ " << threads;
      ASSERT_EQ(prepared.new_to_old, reference.new_to_old)
          << name << " @ " << threads;
      ASSERT_EQ(prepared.bitmaps.rows, reference.bitmaps.rows)
          << name << " @ " << threads;
      ASSERT_EQ(prepared.bitmaps.words, reference.bitmaps.words)
          << name << " @ " << threads;
    }
  }
}

TEST(HybridEnginePreprocessTest, NoRelabelCsrMatchesSequentialOrientedCsr) {
  prim::ThreadPool pool(4);
  EngineOptions opts;
  opts.relabel_by_degree = false;
  for (const auto& [name, g] : generator_matrix(11)) {
    const Csr expected = oriented_csr(g);
    const cpu::PreparedGraph prepared = cpu::prepare(g, pool, opts);
    ASSERT_TRUE(std::ranges::equal(prepared.oriented.offsets(),
                                   expected.offsets()))
        << name;
    ASSERT_TRUE(std::ranges::equal(prepared.oriented.neighbor_array(),
                                   expected.neighbor_array()))
        << name;
  }
}

TEST(HybridEnginePreprocessTest, RelabelingIsAPermutationWithDescendingLists) {
  prim::ThreadPool pool(2);
  const EdgeList g = gen::barabasi_albert(400, 5, 3);
  const cpu::PreparedGraph prepared = cpu::prepare(g, pool);
  ASSERT_EQ(prepared.new_to_old.size(), g.num_vertices());
  std::vector<VertexId> sorted = prepared.new_to_old;
  std::ranges::sort(sorted);
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(sorted[v], v);
  // In the relabeled space every oriented edge points to a smaller id
  // (higher-degree vertex), so lists cover the compact prefix [0, u).
  const std::vector<EdgeIndex> degree = g.degrees();
  for (VertexId u = 0; u < prepared.oriented.num_vertices(); ++u) {
    for (VertexId w : prepared.oriented.neighbors(u)) {
      EXPECT_LT(w, u);
    }
  }
  // Relabeling preserves degree-descending order.
  for (VertexId r = 1; r < g.num_vertices(); ++r) {
    EXPECT_GE(degree[prepared.new_to_old[r - 1]],
              degree[prepared.new_to_old[r]]);
  }
}

TEST(HybridEnginePreprocessTest, ParallelDegreesMatchesSequential) {
  prim::ThreadPool pool(5);
  for (const auto& [name, g] : generator_matrix(13)) {
    EXPECT_EQ(cpu::parallel_degrees(g.edges(), g.num_vertices(), pool),
              g.degrees())
        << name;
  }
}

TEST(HybridEngineCountTest, CountPreparedIsThreadCountInvariant) {
  prim::ThreadPool build_pool(1);
  const EdgeList g = gen::rmat({.scale = 9, .edge_factor = 10}, 21);
  const cpu::PreparedGraph prepared = cpu::prepare(g, build_pool);
  const TriangleCount expected = cpu::count_prepared(prepared, build_pool);
  for (std::size_t threads : {2u, 4u, 7u}) {
    prim::ThreadPool pool(threads);
    cpu::CountingStats stats;
    EXPECT_EQ(cpu::count_prepared(prepared, pool, &stats), expected);
    EXPECT_EQ(stats.total_edges(), prepared.oriented.num_edge_slots());
  }
}

TEST(HybridEngineCountTest, MulticoreForwardReportsBreakdown) {
  prim::ThreadPool pool(3);
  const EdgeList g = gen::social({.n = 400, .attach = 5}, 17);
  cpu::EngineResult breakdown;
  const TriangleCount count = cpu::count_forward_multicore(g, pool, &breakdown);
  EXPECT_EQ(count, cpu::count_forward(g));
  EXPECT_EQ(breakdown.triangles, count);
  EXPECT_GE(breakdown.preprocess.total_ms(), 0.0);
  EXPECT_GT(breakdown.counting.total_edges(), 0u);
  EXPECT_EQ(breakdown.counting.total_edges(), g.num_edges());
}

TEST(HybridEngineCountTest, PooledHybridMatchesSequentialHybrid) {
  prim::ThreadPool pool(4);
  for (const auto& [name, g] : generator_matrix(5)) {
    for (EdgeIndex threshold : {0u, 4u, 16u, 1000u}) {
      EXPECT_EQ(cpu::count_hybrid(g, threshold, pool),
                cpu::count_hybrid(g, threshold))
          << name << " threshold " << threshold;
    }
  }
  for (const auto& [name, g] : adversarial_matrix()) {
    EXPECT_EQ(cpu::count_hybrid(g, 8, pool), cpu::count_hybrid(g, 8)) << name;
  }
}

TEST(HybridEngineBitmapTest, TruncatedRowsAnswerExactMembership) {
  prim::ThreadPool pool(2);
  EngineOptions opts;
  opts.bitmap_threshold = 2;
  const cpu::PreparedGraph prepared = cpu::prepare(clique(12), pool, opts);
  ASSERT_FALSE(prepared.bitmaps.empty());
  const Csr& csr = prepared.oriented;
  for (VertexId u = 0; u < csr.num_vertices(); ++u) {
    const std::uint32_t row = prepared.bitmaps.row_of(u);
    if (row == cpu::BitmapIndex::kNoRow) continue;
    const auto adj = csr.neighbors(u);
    for (VertexId w = 0; w < csr.num_vertices(); ++w) {
      const bool expected = std::ranges::binary_search(adj, w);
      EXPECT_EQ(prepared.bitmaps.test(row, w), expected)
          << "row " << u << " bit " << w;
    }
  }
}

}  // namespace
}  // namespace trico
