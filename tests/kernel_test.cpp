// White-box tests of the CountTriangles kernel state machine: phase
// sequencing, per-variant load behaviour (the §III-D ablation mechanics),
// and the multi-GPU edge partition.

#include <gtest/gtest.h>

#include <vector>

#include "core/count_kernels.hpp"
#include "cpu/counting.hpp"
#include "gen/generators.hpp"
#include "graph/orientation.hpp"
#include "simt/device.hpp"
#include "simt/runner.hpp"

namespace trico::core {
namespace {

/// Uploads the oriented form of `edges` and returns the device graph.
struct Fixture {
  explicit Fixture(const EdgeList& edges)
      : device(simt::DeviceConfig::gtx_980()) {
    const Csr csr = oriented_csr(edges);
    for (VertexId u = 0; u < csr.num_vertices(); ++u) {
      for (VertexId v : csr.neighbors(u)) {
        oriented.push_back(Edge{u, v});
        soa_src.push_back(u);
        soa_dst.push_back(v);
      }
    }
    for (EdgeIndex offset : csr.offsets()) {
      node.push_back(static_cast<std::uint32_t>(offset));
    }
    graph.num_edges = oriented.size();
    graph.src = device.upload<VertexId>(soa_src);
    graph.dst = device.upload<VertexId>(soa_dst);
    graph.pairs = device.upload<Edge>(oriented);
    graph.node = device.upload<std::uint32_t>(node);
  }

  simt::Device device;
  std::vector<Edge> oriented;
  std::vector<VertexId> soa_src, soa_dst;
  std::vector<std::uint32_t> node;
  OrientedDeviceGraph graph;
};

/// Runs one thread to completion functionally, returning its count and the
/// number of loads it reported.
struct SingleThreadRun {
  TriangleCount count = 0;
  std::uint64_t loads = 0;
  std::uint64_t steps = 0;
};

SingleThreadRun run_single_thread(const OrientedDeviceGraph& graph,
                                  KernelVariant variant) {
  CountTrianglesKernel kernel(graph, variant);
  CountTrianglesKernel::State state;
  kernel.start(state, 0, 1);  // one thread owns every edge
  simt::TimedSink sink;
  SingleThreadRun run;
  for (;;) {
    sink.clear();
    const bool running = kernel.step(state, sink);
    run.loads += sink.accesses().size();
    ++run.steps;
    if (!running) break;
  }
  kernel.retire(state);
  run.count = kernel.total();
  return run;
}

EdgeList test_graph() {
  gen::RmatParams params;
  params.scale = 9;
  params.edge_factor = 10;
  return gen::rmat(params, 5);
}

TEST(KernelTest, SingleThreadCountsExactly) {
  const EdgeList g = test_graph();
  Fixture fx(g);
  const auto run = run_single_thread(fx.graph, KernelVariant{});
  EXPECT_EQ(run.count, cpu::count_forward(g));
}

TEST(KernelTest, AllVariantsAgree) {
  const EdgeList g = test_graph();
  Fixture fx(g);
  const TriangleCount expected = cpu::count_forward(g);
  for (bool soa : {true, false}) {
    for (bool final_loop : {true, false}) {
      for (bool ro : {true, false}) {
        KernelVariant variant{final_loop, soa, ro};
        EXPECT_EQ(run_single_thread(fx.graph, variant).count, expected)
            << "soa=" << soa << " final=" << final_loop << " ro=" << ro;
      }
    }
  }
}

TEST(KernelTest, FinalLoopIssuesFewerLoadsThanPreliminary) {
  // §III-D3: the preliminary loop reads both frontiers every iteration; the
  // final loop reads one per advance (two only on a triangle hit).
  const EdgeList g = test_graph();
  Fixture fx(g);
  KernelVariant final_variant{true, true, true};
  KernelVariant prelim_variant{false, true, true};
  const auto final_run = run_single_thread(fx.graph, final_variant);
  const auto prelim_run = run_single_thread(fx.graph, prelim_variant);
  EXPECT_EQ(final_run.count, prelim_run.count);
  EXPECT_LT(final_run.loads, prelim_run.loads);
  // The reduction is substantial (toward ~half for triangle-poor merges).
  EXPECT_LT(static_cast<double>(final_run.loads),
            0.85 * static_cast<double>(prelim_run.loads));
}

TEST(KernelTest, AoSEndpointLoadIsOneWideRead) {
  // In AoS layout the (u, v) endpoints arrive in a single 8-byte read, so
  // the AoS kernel issues fewer scalar loads than SoA (but touches twice
  // the adjacency bytes, which is what makes it slower end to end).
  const EdgeList g = test_graph();
  Fixture fx(g);
  const auto aos = run_single_thread(fx.graph, KernelVariant{true, false, true});
  const auto soa = run_single_thread(fx.graph, KernelVariant{true, true, true});
  EXPECT_EQ(aos.count, soa.count);
  EXPECT_LT(aos.loads, soa.loads);
}

TEST(KernelTest, ThreadWithNoEdgesRetiresImmediately) {
  const EdgeList g = test_graph();
  Fixture fx(g);
  CountTrianglesKernel kernel(fx.graph, KernelVariant{});
  CountTrianglesKernel::State state;
  // Thread id beyond the edge count never enters the merge.
  kernel.start(state, fx.graph.num_edges + 5, fx.graph.num_edges + 10);
  simt::NullSink sink;
  EXPECT_FALSE(kernel.step(state, sink));
  kernel.retire(state);
  EXPECT_EQ(kernel.total(), 0u);
}

TEST(KernelTest, GridStridePartitionsCoverEveryEdgeOnce) {
  // Simulate T threads stepping functionally; their per-thread counts must
  // sum to the total (each edge owned by exactly one thread).
  const EdgeList g = test_graph();
  Fixture fx(g);
  CountTrianglesKernel kernel(fx.graph, KernelVariant{});
  const std::uint64_t threads = 37;  // deliberately not a divisor or power of 2
  simt::NullSink sink;
  for (std::uint64_t tid = 0; tid < threads; ++tid) {
    CountTrianglesKernel::State state;
    kernel.start(state, tid, threads);
    while (kernel.step(state, sink)) {
    }
    kernel.retire(state);
  }
  EXPECT_EQ(kernel.total(), cpu::count_forward(g));
}

TEST(KernelTest, MultiGpuPartitionIsExactAndDisjoint) {
  // §III-E: devices own modulo slices (first_edge, edge_step); the slices'
  // counts must sum to the total for any device count.
  const EdgeList g = test_graph();
  const TriangleCount expected = cpu::count_forward(g);
  for (std::uint64_t devices : {2u, 3u, 5u}) {
    Fixture fx(g);
    TriangleCount sum = 0;
    for (std::uint64_t d = 0; d < devices; ++d) {
      OrientedDeviceGraph slice = fx.graph;
      slice.first_edge = d;
      slice.edge_step = devices;
      sum += run_single_thread(slice, KernelVariant{}).count;
    }
    EXPECT_EQ(sum, expected) << devices << " devices";
  }
}

TEST(KernelTest, ReadonlyFlagPropagatesToSink) {
  const EdgeList g = test_graph();
  Fixture fx(g);
  CountTrianglesKernel ro_kernel(fx.graph, KernelVariant{true, true, true});
  CountTrianglesKernel rw_kernel(fx.graph, KernelVariant{true, true, false});
  CountTrianglesKernel::State state;
  simt::TimedSink sink;

  ro_kernel.start(state, 0, 1);
  ro_kernel.step(state, sink);
  ASSERT_FALSE(sink.accesses().empty());
  for (const auto& access : sink.accesses()) EXPECT_TRUE(access.readonly);

  sink.clear();
  rw_kernel.start(state, 0, 1);
  rw_kernel.step(state, sink);
  ASSERT_FALSE(sink.accesses().empty());
  for (const auto& access : sink.accesses()) EXPECT_FALSE(access.readonly);
}

}  // namespace
}  // namespace trico::core
