// White-box tests of the runner's timing model: synthetic kernels designed
// to be issue-bound, latency-bound, or bandwidth-bound must be charged by
// the matching bound (DESIGN.md §6), and the model must respond to the
// architectural parameters the paper's optimizations rely on.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simt/device.hpp"
#include "simt/runner.hpp"

namespace trico::simt {
namespace {

DeviceConfig test_device() {
  DeviceConfig config = DeviceConfig::gtx_980();
  config.num_sms = 2;
  return config;
}

/// Pure-ALU kernel: `iterations` steps per thread, no memory traffic.
class AluKernel {
 public:
  explicit AluKernel(std::uint64_t iterations) : iterations_(iterations) {}

  struct State {
    std::uint64_t remaining = 0;
  };

  void start(State& state, std::uint64_t, std::uint64_t) const {
    state.remaining = iterations_;
  }

  template <typename Sink>
  bool step(State& state, Sink&) const {
    if (state.remaining == 0) return false;
    --state.remaining;
    return true;
  }

  void retire(const State&) {}

 private:
  std::uint64_t iterations_;
};

/// Pointer-chase kernel: each thread walks a random permutation, so every
/// access is a fresh line with no spatial locality — latency exposed.
class ChaseKernel {
 public:
  ChaseKernel(DeviceSpan<std::uint32_t> next, std::uint64_t hops)
      : next_(next), hops_(hops) {}

  struct State {
    std::uint64_t position = 0;
    std::uint64_t remaining = 0;
  };

  void start(State& state, std::uint64_t tid, std::uint64_t) const {
    state.position = tid % next_.size();
    state.remaining = hops_;
  }

  template <typename Sink>
  bool step(State& state, Sink& sink) const {
    if (state.remaining == 0) return false;
    sink.read(next_.addr(state.position), 4, true);
    state.position = next_[state.position];
    --state.remaining;
    return true;
  }

  void retire(const State&) {}

 private:
  DeviceSpan<std::uint32_t> next_;
  std::uint64_t hops_;
};

/// Streaming kernel: coalesced sequential reads, maximal DRAM traffic.
class StreamKernel {
 public:
  explicit StreamKernel(DeviceSpan<std::uint32_t> data) : data_(data) {}

  struct State {
    std::uint64_t index = 0;
    std::uint64_t stride = 0;
  };

  void start(State& state, std::uint64_t tid, std::uint64_t total) const {
    state.index = tid;
    state.stride = total;
  }

  template <typename Sink>
  bool step(State& state, Sink& sink) const {
    if (state.index >= data_.size()) return false;
    sink.read(data_.addr(state.index), 4, true);
    state.index += state.stride;
    return true;
  }

  void retire(const State&) {}

 private:
  DeviceSpan<std::uint32_t> data_;
};

TEST(TimingModelTest, AluKernelIsIssueBound) {
  const Device device(test_device());
  AluKernel kernel(500);
  const KernelStats stats =
      launch_kernel(device, LaunchConfig{64, 8, 32}, kernel);
  EXPECT_DOUBLE_EQ(stats.cycles, stats.issue_cycles);
  EXPECT_EQ(stats.memory.transactions, 0u);
  EXPECT_EQ(stats.bandwidth_cycles, 0.0);
}

TEST(TimingModelTest, AluTimeScalesLinearlyWithWork) {
  const Device device(test_device());
  AluKernel short_kernel(200);
  AluKernel long_kernel(800);
  const auto s1 = launch_kernel(device, LaunchConfig{64, 8, 32}, short_kernel);
  const auto s2 = launch_kernel(device, LaunchConfig{64, 8, 32}, long_kernel);
  EXPECT_NEAR(s2.cycles / s1.cycles, 4.0, 0.1);
}

TEST(TimingModelTest, PointerChaseIsLatencyBound) {
  Device device(test_device());
  // A permutation much larger than every cache level.
  const std::size_t n = 1 << 20;
  std::vector<std::uint32_t> next(n);
  // Deterministic "random" permutation: multiply by an odd constant mod n.
  for (std::size_t i = 0; i < n; ++i) {
    next[i] = static_cast<std::uint32_t>((i * 2654435761ull + 12345) % n);
  }
  const auto span = device.upload<std::uint32_t>(next);
  ChaseKernel kernel(span, 64);
  // Few warps: nothing to hide latency with.
  const KernelStats stats =
      launch_kernel(device, LaunchConfig{32, 1, 32}, kernel);
  EXPECT_DOUBLE_EQ(stats.cycles, stats.latency_cycles);
  EXPECT_GT(stats.latency_cycles, stats.issue_cycles);
}

TEST(TimingModelTest, StreamIsBandwidthOrIssueBoundNotLatencyBound) {
  Device device(test_device());
  std::vector<std::uint32_t> data(4 << 20, 1);
  const auto span = device.upload<std::uint32_t>(data);
  StreamKernel kernel(span);
  const KernelStats stats =
      launch_kernel(device, LaunchConfig{256, 8, 32}, kernel);
  // Sequential coalesced streaming: latency is amortized over 32 hits per
  // line; the binding constraint is throughput.
  EXPECT_LT(stats.latency_cycles, stats.cycles + 1e-9);
  EXPECT_GT(stats.memory.dram_bytes, data.size() * 4 / 2);
}

TEST(TimingModelTest, HigherBandwidthDeviceStreamsFaster) {
  // The stream kernel demands ~128B per ~9 issue cycles (~14 B/cycle), so
  // the slow device must offer less than that per SM to be DRAM-bound.
  DeviceConfig slow = test_device();
  slow.dram_bandwidth_gbps = 10;
  DeviceConfig fast = test_device();
  fast.dram_bandwidth_gbps = 400;
  std::vector<std::uint32_t> data(4 << 20, 1);
  double times[2];
  int i = 0;
  for (const auto& config : {slow, fast}) {
    Device device(config);
    const auto span = device.upload<std::uint32_t>(data);
    StreamKernel kernel(span);
    times[i++] =
        launch_kernel(device, LaunchConfig{256, 8, 32}, kernel).time_ms;
  }
  EXPECT_GT(times[0], 2.0 * times[1]);
}

TEST(TimingModelTest, MoreWarpsHideChaseLatency) {
  // The occupancy argument behind the paper's SIII-C tuning: with more
  // resident warps per SM, per-warp stalls overlap and total time shrinks
  // (until another bound takes over).
  Device device(test_device());
  const std::size_t n = 1 << 20;
  std::vector<std::uint32_t> next(n);
  for (std::size_t i = 0; i < n; ++i) {
    next[i] = static_cast<std::uint32_t>((i * 2654435761ull + 7) % n);
  }
  const auto span = device.upload<std::uint32_t>(next);
  // Equal total work per launch: hops x threads constant.
  ChaseKernel deep(span, 256);
  const auto few_warps = launch_kernel(device, LaunchConfig{32, 1, 32}, deep);
  ChaseKernel shallow(span, 32);
  const auto many_warps = launch_kernel(device, LaunchConfig{256, 1, 32}, shallow);
  EXPECT_LT(many_warps.cycles, few_warps.cycles);
}

TEST(TimingModelTest, L2TripCostChargesNonResidentTraffic) {
  // Two identical streams; one device has a free L2 path, the other pays
  // per trip: the paying device must be slower or equal.
  DeviceConfig cheap = test_device();
  cheap.issue_cycles_per_l2_trip = 0.0;
  DeviceConfig expensive = test_device();
  expensive.issue_cycles_per_l2_trip = 10.0;
  std::vector<std::uint32_t> data(1 << 20, 1);
  double cycles[2];
  int i = 0;
  for (const auto& config : {cheap, expensive}) {
    Device device(config);
    const auto span = device.upload<std::uint32_t>(data);
    StreamKernel kernel(span);
    cycles[i++] =
        launch_kernel(device, LaunchConfig{128, 8, 32}, kernel).cycles;
  }
  EXPECT_GT(cycles[1], cycles[0]);
}

TEST(TimingModelTest, SampledRunApproximatesFullRun) {
  Device device(DeviceConfig::gtx_980());
  std::vector<std::uint32_t> data(1 << 20, 1);
  const auto span = device.upload<std::uint32_t>(data);
  StreamKernel full_kernel(span);
  const auto full = launch_kernel(device, LaunchConfig{128, 8, 32}, full_kernel);
  StreamKernel sampled_kernel(span);
  SimOptions options;
  options.sample_sms = 4;
  const auto sampled =
      launch_kernel(device, LaunchConfig{128, 8, 32}, sampled_kernel, options);
  EXPECT_NEAR(sampled.time_ms / full.time_ms, 1.0, 0.35);
}

}  // namespace
}  // namespace trico::simt
