// Fault-injection and recovery tests: every planned fault must fire exactly
// once per occurrence, every recovery path must restore the exact CPU
// triangle count, and the RobustnessReport must account each fault.

#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <tuple>
#include <vector>

#include "core/gpu_forward.hpp"
#include "core/preprocess.hpp"
#include "cpu/counting.hpp"
#include "gen/generators.hpp"
#include "multigpu/multi_gpu.hpp"
#include "simt/fault.hpp"

namespace trico {
namespace {

simt::DeviceConfig small_device() {
  simt::DeviceConfig config = simt::DeviceConfig::tesla_c2050();
  config.num_sms = 4;
  return config;
}

// ---------------------------------------------------------------------------
// FaultPlan mechanics.

TEST(FaultPlanTest, FiresAtTheRequestedOccurrence) {
  simt::FaultPlan plan(1);
  plan.inject({simt::FaultKind::kKernelAbort, simt::FaultSite::kKernel, 0,
               /*occurrence=*/2, /*repeats=*/1});
  EXPECT_FALSE(plan.probe(simt::FaultSite::kKernel, 0).has_value());
  const auto fired = plan.probe(simt::FaultSite::kKernel, 0);
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(*fired, simt::FaultKind::kKernelAbort);
  EXPECT_FALSE(plan.probe(simt::FaultSite::kKernel, 0).has_value());
  EXPECT_TRUE(plan.exhausted());
}

TEST(FaultPlanTest, MatchesSiteAndDevice) {
  simt::FaultPlan plan(1);
  plan.inject({simt::FaultKind::kDeviceLost, simt::FaultSite::kBroadcast, 2});
  EXPECT_FALSE(plan.probe(simt::FaultSite::kBroadcast, 0).has_value());
  EXPECT_FALSE(plan.probe(simt::FaultSite::kKernel, 2).has_value());
  EXPECT_TRUE(plan.probe(simt::FaultSite::kBroadcast, 2).has_value());
}

TEST(FaultPlanTest, RepeatsModelAPersistentFailure) {
  simt::FaultPlan plan(1);
  plan.inject({simt::FaultKind::kTransferCorruption, simt::FaultSite::kBroadcast,
               0, /*occurrence=*/1, /*repeats=*/3});
  EXPECT_EQ(plan.planned(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(plan.probe(simt::FaultSite::kBroadcast, 0).has_value());
  }
  EXPECT_FALSE(plan.probe(simt::FaultSite::kBroadcast, 0).has_value());
  EXPECT_EQ(plan.fired(), 3u);
  EXPECT_TRUE(plan.exhausted());
}

TEST(FaultPlanTest, CorruptionIsDeterministicAndCaughtByChecksum) {
  std::vector<std::byte> a(256, std::byte{0x5a});
  std::vector<std::byte> b(256, std::byte{0x5a});
  const std::uint64_t clean = simt::checksum_bytes(a.data(), a.size());
  simt::FaultPlan plan_a(99);
  simt::FaultPlan plan_b(99);
  plan_a.corrupt(std::span(a));
  plan_b.corrupt(std::span(b));
  EXPECT_EQ(a, b);  // same seed, same flip
  EXPECT_NE(simt::checksum_bytes(a.data(), a.size()), clean);
}

TEST(ChecksumTest, SeedChainingOrdersTheArrays) {
  const std::uint32_t x = 17, y = 23;
  const std::uint64_t xy = simt::checksum_bytes(
      &y, sizeof(y), simt::checksum_bytes(&x, sizeof(x)));
  const std::uint64_t yx = simt::checksum_bytes(
      &x, sizeof(x), simt::checksum_bytes(&y, sizeof(y)));
  EXPECT_NE(xy, yx);
  // Deterministic: recomputing gives the same value.
  EXPECT_EQ(simt::checksum_bytes(&x, sizeof(x)),
            simt::checksum_bytes(&x, sizeof(x)));
}

// ---------------------------------------------------------------------------
// Grid: graphs x fault plans through the multi-GPU counter. Every plan must
// recover to the CPU baseline with each injected fault recorded exactly once.

struct PlanCase {
  const char* name;
  std::vector<simt::FaultSpec> specs;
};

const std::vector<PlanCase>& plan_cases() {
  static const std::vector<PlanCase> cases = {
      {"DeviceLostDuringCounting",
       {{simt::FaultKind::kDeviceLost, simt::FaultSite::kKernel, 1, 1, 1}}},
      {"DeviceLostDuringPreprocessing",
       {{simt::FaultKind::kDeviceLost, simt::FaultSite::kPreprocess, 0, 1, 1}}},
      {"AllocFailureOnUpload",
       {{simt::FaultKind::kAllocFailure, simt::FaultSite::kAlloc, 2, 1, 1}}},
      {"CorruptedBroadcast",
       {{simt::FaultKind::kTransferCorruption, simt::FaultSite::kBroadcast, 1,
         1, 1}}},
      {"PersistentlyCorruptedBroadcast",
       {{simt::FaultKind::kTransferCorruption, simt::FaultSite::kBroadcast, 2,
         1, 3}}},
      {"TransientKernelAbort",
       {{simt::FaultKind::kKernelAbort, simt::FaultSite::kKernel, 0, 1, 1}}},
      {"LostDeviceAndCorruptedBroadcast",
       {{simt::FaultKind::kDeviceLost, simt::FaultSite::kKernel, 1, 1, 1},
        {simt::FaultKind::kTransferCorruption, simt::FaultSite::kBroadcast, 2,
         1, 1}}},
  };
  return cases;
}

EdgeList grid_graph(int index) {
  switch (index) {
    case 0: return gen::erdos_renyi(300, 2400, 7);
    default: return gen::barabasi_albert(400, 5, 3);
  }
}

class FaultGridTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(FaultGridTest, RecoversToCpuBaseline) {
  const EdgeList g = grid_graph(std::get<0>(GetParam()));
  const PlanCase& pc = plan_cases()[std::get<1>(GetParam())];
  SCOPED_TRACE(pc.name);

  simt::FaultPlan plan(42);
  for (const simt::FaultSpec& spec : pc.specs) plan.inject(spec);
  core::CountingOptions options;
  options.fault_plan = &plan;

  multigpu::MultiGpuCounter counter(small_device(), 3, options);
  const multigpu::MultiGpuResult r = counter.count(g);

  EXPECT_EQ(r.triangles, cpu::count_forward(g));
  // Each planned firing struck exactly once and was recorded exactly once.
  EXPECT_TRUE(plan.exhausted());
  EXPECT_EQ(r.robustness.injected_faults(), plan.fired());
  EXPECT_TRUE(r.robustness.fully_recovered());
}

INSTANTIATE_TEST_SUITE_P(
    GraphsTimesPlans, FaultGridTest,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Range<std::size_t>(0, 7)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::size_t>>& info) {
      return std::string(plan_cases()[std::get<1>(info.param)].name) + "_g" +
             std::to_string(std::get<0>(info.param));
    });

// ---------------------------------------------------------------------------
// Targeted recovery scenarios.

TEST(FaultRecoveryTest, DeviceLostDuringCountingOnFourDevices) {
  const EdgeList g = gen::erdos_renyi(500, 4000, 11);
  simt::FaultPlan plan(7);
  plan.inject({simt::FaultKind::kDeviceLost, simt::FaultSite::kKernel, 2, 1, 1});
  core::CountingOptions options;
  options.fault_plan = &plan;

  multigpu::MultiGpuCounter counter(small_device(), 4, options);
  const multigpu::MultiGpuResult r = counter.count(g);

  EXPECT_EQ(r.triangles, cpu::count_forward(g));
  EXPECT_EQ(r.robustness.devices_lost, 1u);
  EXPECT_EQ(r.robustness.slices_repartitioned, 1u);
  EXPECT_TRUE(r.robustness.fully_recovered());
  ASSERT_EQ(r.slices.size(), 4u);
  EXPECT_TRUE(r.slices[2].lost);
  EXPECT_EQ(r.slices[2].edges, 0u);
  // The lost slice's edges were re-counted by the survivors: the slice
  // totals still partition the oriented edge set exactly.
  std::uint64_t total_edges = 0;
  TriangleCount total_triangles = 0;
  for (const multigpu::DeviceSlice& slice : r.slices) {
    total_edges += slice.edges;
    total_triangles += slice.triangles;
  }
  EXPECT_EQ(total_edges, g.num_edges());
  EXPECT_EQ(total_triangles, r.triangles);
}

TEST(FaultRecoveryTest, PreprocessingFailsOverToNextDevice) {
  const EdgeList g = gen::erdos_renyi(300, 2400, 5);
  simt::FaultPlan plan(3);
  plan.inject(
      {simt::FaultKind::kDeviceLost, simt::FaultSite::kPreprocess, 0, 1, 1});
  core::CountingOptions options;
  options.fault_plan = &plan;

  multigpu::MultiGpuCounter counter(small_device(), 3, options);
  const multigpu::MultiGpuResult r = counter.count(g);

  EXPECT_EQ(r.triangles, cpu::count_forward(g));
  EXPECT_EQ(r.robustness.preprocess_retries, 1u);
  EXPECT_EQ(r.robustness.devices_lost, 1u);
  EXPECT_GT(r.robustness.retry_backoff_ms, 0.0);
  EXPECT_TRUE(r.slices[0].lost);
}

TEST(FaultRecoveryTest, CorruptedBroadcastIsResent) {
  const EdgeList g = gen::erdos_renyi(300, 2400, 5);
  core::CountingOptions clean_options;
  multigpu::MultiGpuCounter clean(small_device(), 3, clean_options);
  const double clean_broadcast_ms = clean.count(g).broadcast_ms;

  simt::FaultPlan plan(5);
  plan.inject({simt::FaultKind::kTransferCorruption,
               simt::FaultSite::kBroadcast, 1, 1, 1});
  core::CountingOptions options;
  options.fault_plan = &plan;
  multigpu::MultiGpuCounter counter(small_device(), 3, options);
  const multigpu::MultiGpuResult r = counter.count(g);

  EXPECT_EQ(r.triangles, cpu::count_forward(g));
  EXPECT_EQ(r.robustness.broadcast_retries, 1u);
  EXPECT_EQ(r.robustness.devices_lost, 0u);
  // The re-send pays a second transfer plus backoff.
  EXPECT_GT(r.broadcast_ms, clean_broadcast_ms);
  EXPECT_GT(r.robustness.retry_backoff_ms, 0.0);
}

TEST(FaultRecoveryTest, TransientKernelAbortRetriesInPlace) {
  const EdgeList g = gen::erdos_renyi(300, 2400, 5);
  simt::FaultPlan plan(9);
  plan.inject({simt::FaultKind::kKernelAbort, simt::FaultSite::kKernel, 0, 1, 1});
  core::CountingOptions options;
  options.fault_plan = &plan;

  core::GpuForwardCounter counter(small_device(), options);
  const core::GpuCountResult r = counter.count(g);

  EXPECT_EQ(r.triangles, cpu::count_forward(g));
  EXPECT_EQ(r.robustness.kernel_retries, 1u);
  EXPECT_GT(r.robustness.retry_backoff_ms, 0.0);
  EXPECT_TRUE(r.robustness.fully_recovered());
}

TEST(FaultRecoveryTest, ThrowsOnlyWhenEveryDeviceIsLost) {
  const EdgeList g = gen::erdos_renyi(200, 1200, 5);
  simt::FaultPlan plan(11);
  plan.inject({simt::FaultKind::kDeviceLost, simt::FaultSite::kKernel, 0, 1, 1})
      .inject({simt::FaultKind::kDeviceLost, simt::FaultSite::kKernel, 1, 1, 1});
  core::CountingOptions options;
  options.fault_plan = &plan;

  multigpu::MultiGpuCounter counter(small_device(), 2, options);
  EXPECT_THROW(counter.count(g), simt::DeviceFault);
}

TEST(FaultRecoveryTest, OrganicOomIsTypedAndMarkedUninjected) {
  simt::DeviceConfig tiny = small_device();
  tiny.memory_bytes = 1024;
  simt::Device device(tiny);
  try {
    (void)device.upload<std::uint32_t>(std::vector<std::uint32_t>(1024, 0));
    FAIL() << "allocation over device memory must throw";
  } catch (const simt::DeviceFault& fault) {
    EXPECT_EQ(fault.kind(), simt::FaultKind::kAllocFailure);
    EXPECT_EQ(fault.site(), simt::FaultSite::kAlloc);
    EXPECT_FALSE(fault.injected());
  }
}

// ---------------------------------------------------------------------------
// Degradation ladder of count_triangles_gpu.

TEST(DegradationLadderTest, StaysOnFullGpuWhenEverythingFits) {
  const EdgeList g = gen::erdos_renyi(400, 3000, 13);
  const core::GpuCountResult r = core::count_triangles_gpu(g, small_device());
  EXPECT_EQ(r.triangles, cpu::count_forward(g));
  EXPECT_EQ(r.robustness.degradation_rung, simt::DegradationRung::kFullGpu);
  EXPECT_FALSE(r.used_cpu_preprocessing);
  EXPECT_TRUE(r.robustness.events.empty());
}

TEST(DegradationLadderTest, BudgetForcesCpuPreprocessRung) {
  const EdgeList g = gen::erdos_renyi(400, 3000, 13);
  // Below the all-GPU preprocessing working set, above the resident arrays.
  core::CountingOptions options;
  options.memory_budget_bytes = 90'000;
  ASSERT_LT(options.memory_budget_bytes,
            core::GpuForwardCounter::device_preprocess_bytes(
                g.num_edge_slots(), g.num_vertices()));
  const core::GpuCountResult r =
      core::count_triangles_gpu(g, small_device(), options);
  EXPECT_EQ(r.triangles, cpu::count_forward(g));
  EXPECT_TRUE(r.used_cpu_preprocessing);
  EXPECT_EQ(r.robustness.degradation_rung,
            simt::DegradationRung::kCpuPreprocess);
}

TEST(DegradationLadderTest, TinyBudgetFallsThroughToOutOfCore) {
  const EdgeList g = gen::erdos_renyi(400, 3000, 13);
  // Too small even for the resident counting arrays: rungs 0 and 1 both die
  // on an organic device OOM and the ladder lands on out-of-core counting.
  core::CountingOptions options;
  options.memory_budget_bytes = 12'288;
  const core::GpuCountResult r =
      core::count_triangles_gpu(g, small_device(), options);
  EXPECT_EQ(r.triangles, cpu::count_forward(g));
  EXPECT_EQ(r.robustness.degradation_rung, simt::DegradationRung::kOutOfCore);
  EXPECT_GE(r.robustness.alloc_failures, 2u);   // one per failed upper rung
  EXPECT_EQ(r.robustness.injected_faults(), 0u);  // organic, not planned
  EXPECT_LE(r.device_peak_bytes, options.memory_budget_bytes);
}

TEST(DegradationLadderTest, PersistentKernelAbortStepsDownARung) {
  const EdgeList g = gen::erdos_renyi(400, 3000, 13);
  simt::FaultPlan plan(21);
  // Defeats the whole retry budget on rung 0; rung 1 then runs clean.
  plan.inject(
      {simt::FaultKind::kKernelAbort, simt::FaultSite::kKernel, 0, 1, 3});
  core::CountingOptions options;
  options.fault_plan = &plan;
  const core::GpuCountResult r =
      core::count_triangles_gpu(g, small_device(), options);
  EXPECT_EQ(r.triangles, cpu::count_forward(g));
  EXPECT_EQ(r.robustness.degradation_rung,
            simt::DegradationRung::kCpuPreprocess);
  EXPECT_TRUE(plan.exhausted());
  EXPECT_FALSE(r.robustness.events.empty());
}

// ---------------------------------------------------------------------------
// Typed overflow / corrupt-input rejection in preprocessing.

TEST(PreprocessGuardTest, RejectsReservedVertexId) {
  // kInvalidVertex as a vertex id would wrap max_id + 1 to zero.
  const EdgeList g(std::vector<Edge>{{0, kInvalidVertex}, {kInvalidVertex, 0}},
                   2);
  core::GpuForwardCounter counter(small_device());
  EXPECT_THROW((void)counter.count(g), core::PreprocessError);
}

TEST(PreprocessGuardTest, RejectsAbsurdVertexIdForTinyGraph) {
  // A flipped-bit id of ~4.29e9 on a 2-slot graph would allocate a ~16 GB
  // node array; the sanity cap rejects it with a typed error instead.
  const EdgeList g(std::vector<Edge>{{0, 4'294'000'000u}, {4'294'000'000u, 0}},
                   2);
  core::GpuForwardCounter counter(small_device());
  EXPECT_THROW((void)counter.count(g), core::PreprocessError);
}

TEST(PreprocessGuardTest, AcceptsSparseButPlausibleIds) {
  // Isolated high ids within the cap still work (the cap only rejects ids
  // wildly out of proportion to the edge count).
  const EdgeList g(std::vector<Edge>{{0, 1000}, {1000, 0}}, 1001);
  core::GpuForwardCounter counter(small_device());
  const core::GpuCountResult r = counter.count(g);
  EXPECT_EQ(r.triangles, 0u);
  EXPECT_EQ(r.num_vertices, 1001u);
}

}  // namespace
}  // namespace trico
