// Tests for the graph generators: canonical-form invariants, determinism,
// structural properties, and the closed-form reference families.

#include <gtest/gtest.h>

#include "cpu/counting.hpp"
#include "gen/generators.hpp"
#include "gen/reference.hpp"
#include "graph/stats.hpp"

namespace trico::gen {
namespace {

void expect_canonical(const EdgeList& edges) {
  const ValidationReport report = edges.validate();
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(ErdosRenyiTest, ProducesRequestedEdgeCount) {
  const EdgeList g = erdos_renyi(500, 2000, 1);
  EXPECT_EQ(g.num_edges(), 2000u);
  EXPECT_LE(g.num_vertices(), 500u);
  expect_canonical(g);
}

TEST(ErdosRenyiTest, Deterministic) {
  EXPECT_EQ(erdos_renyi(200, 500, 7), erdos_renyi(200, 500, 7));
}

TEST(ErdosRenyiTest, DifferentSeedsDiffer) {
  EXPECT_NE(erdos_renyi(200, 500, 7), erdos_renyi(200, 500, 8));
}

TEST(ErdosRenyiTest, RejectsImpossibleEdgeCount) {
  EXPECT_THROW(erdos_renyi(4, 7, 1), std::invalid_argument);
}

TEST(ErdosRenyiTest, CompleteGraphIsPossible) {
  const EdgeList g = erdos_renyi(5, 10, 3);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(cpu::count_forward(g), 10u);  // K5 has C(5,3) = 10 triangles
}

TEST(RmatTest, RespectsScaleAndEdgeFactor) {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 8;
  const EdgeList g = rmat(params, 11);
  EXPECT_LE(g.num_vertices(), 1u << 10);
  // Dedup and loop removal lose some attempts but most survive.
  EXPECT_GT(g.num_edges(), (1u << 10) * 8 / 2);
  EXPECT_LE(g.num_edges(), (1u << 10) * 8);
  expect_canonical(g);
}

TEST(RmatTest, SkewedDegreeDistribution) {
  RmatParams params;
  params.scale = 12;
  params.edge_factor = 8;
  const EdgeList g = rmat(params, 5);
  const GraphStats stats = compute_stats(g);
  // R-MAT graphs are heavy-tailed: max degree far above average.
  EXPECT_GT(static_cast<double>(stats.max_degree), 10.0 * stats.avg_degree);
}

TEST(RmatTest, Deterministic) {
  RmatParams params;
  params.scale = 8;
  EXPECT_EQ(rmat(params, 3), rmat(params, 3));
}

TEST(BarabasiAlbertTest, ProducesExpectedSize) {
  const EdgeList g = barabasi_albert(1000, 5, 2);
  EXPECT_EQ(g.num_vertices(), 1000u);
  // Each of the ~995 non-seed vertices adds ~5 edges.
  EXPECT_GT(g.num_edges(), 4000u);
  EXPECT_LT(g.num_edges(), 5200u);
  expect_canonical(g);
}

TEST(BarabasiAlbertTest, PowerLawHub) {
  const EdgeList g = barabasi_albert(2000, 4, 9);
  const GraphStats stats = compute_stats(g);
  EXPECT_GT(static_cast<double>(stats.max_degree), 5.0 * stats.avg_degree);
}

TEST(BarabasiAlbertTest, RejectsBadParams) {
  EXPECT_THROW(barabasi_albert(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(3, 5, 1), std::invalid_argument);
}

TEST(WattsStrogatzTest, ZeroBetaIsRingLattice) {
  const EdgeList g = watts_strogatz(100, 3, 0.0, 1);
  EXPECT_EQ(g.num_edges(), 300u);
  const GraphStats stats = compute_stats(g);
  EXPECT_EQ(stats.max_degree, 6u);
  // Ring lattice with k=3: each vertex forms triangles with near neighbours;
  // count is n * (k * (k - 1)) / 2 ... verified against the closed form 3nk(k-1)/6.
  EXPECT_EQ(cpu::count_forward(g), 100u * 3u);
}

TEST(WattsStrogatzTest, RewiringPreservesEdgeBudget) {
  const EdgeList g = watts_strogatz(500, 4, 0.2, 3);
  // Rewiring can collide (edge kept instead), so count is <= n*k.
  EXPECT_LE(g.num_edges(), 2000u);
  EXPECT_GT(g.num_edges(), 1800u);
  expect_canonical(g);
}

TEST(WattsStrogatzTest, RejectsBadParams) {
  EXPECT_THROW(watts_strogatz(10, 5, 0.1, 1), std::invalid_argument);
}

TEST(SocialTest, TriadicClosureRaisesTriangleDensity) {
  SocialParams base;
  base.n = 2000;
  base.attach = 6;
  base.closure_rounds = 0.0;
  SocialParams closed = base;
  closed.closure_rounds = 2.0;
  closed.closure_prob = 0.5;
  const EdgeList g0 = social(base, 4);
  const EdgeList g1 = social(closed, 4);
  const double ratio0 = static_cast<double>(cpu::count_forward(g0)) /
                        static_cast<double>(g0.num_edges());
  const double ratio1 = static_cast<double>(cpu::count_forward(g1)) /
                        static_cast<double>(g1.num_edges());
  EXPECT_GT(ratio1, ratio0);
  expect_canonical(g1);
}

// ---- Reference families: every closed form must hold ----

TEST(ReferenceTest, CompleteGraphTriangles) {
  for (VertexId n : {3u, 4u, 5u, 10u, 20u}) {
    const ReferenceGraph g = complete(n);
    EXPECT_EQ(cpu::count_forward(g.edges), g.expected_triangles) << "K" << n;
  }
}

TEST(ReferenceTest, AllSmallFamiliesMatchClosedForms) {
  for (const ReferenceGraph& g : all_small_references()) {
    EXPECT_EQ(cpu::count_forward(g.edges), g.expected_triangles) << g.family;
    expect_canonical(g.edges);
  }
}

TEST(ReferenceTest, WheelIsK4AtFour) {
  const ReferenceGraph g = wheel(4);
  EXPECT_EQ(g.expected_triangles, 4u);
  EXPECT_EQ(cpu::count_forward(g.edges), 4u);
}

TEST(ReferenceTest, BipartiteHasNoTriangles) {
  const ReferenceGraph g = complete_bipartite(8, 9);
  EXPECT_EQ(cpu::count_forward(g.edges), 0u);
}

TEST(ReferenceTest, RejectsDegenerateParams) {
  EXPECT_THROW(cycle(2), std::invalid_argument);
  EXPECT_THROW(wheel(3), std::invalid_argument);
  EXPECT_THROW(windmill(1, 3), std::invalid_argument);
  EXPECT_THROW(clique_ring(4, 2), std::invalid_argument);
}

}  // namespace
}  // namespace trico::gen
