// Tests for the CPU counting algorithms: closed-form families, pairwise
// agreement across all algorithms on random graphs, and the §III-A
// adjacency-input variant.

#include <gtest/gtest.h>

#include <numeric>

#include "cpu/counting.hpp"
#include "gen/generators.hpp"
#include "gen/reference.hpp"
#include "graph/conversion.hpp"
#include "graph/orientation.hpp"

namespace trico::cpu {
namespace {

using CountFn = TriangleCount (*)(const EdgeList&);

struct NamedAlgorithm {
  const char* name;
  CountFn fn;
};

const NamedAlgorithm kAlgorithms[] = {
    {"node_iterator", &count_node_iterator},
    {"edge_iterator", &count_edge_iterator},
    {"forward", &count_forward},
    {"compact_forward", &count_compact_forward},
    {"forward_hashed", &count_forward_hashed},
    {"forward_binary_search", &count_forward_binary_search},
};

class AlgorithmTest : public ::testing::TestWithParam<NamedAlgorithm> {};

TEST_P(AlgorithmTest, MatchesClosedFormsOnAllReferenceFamilies) {
  for (const gen::ReferenceGraph& g : gen::all_small_references()) {
    EXPECT_EQ(GetParam().fn(g.edges), g.expected_triangles)
        << GetParam().name << " on " << g.family;
  }
}

TEST_P(AlgorithmTest, EmptyGraph) {
  EXPECT_EQ(GetParam().fn(EdgeList{}), 0u);
}

TEST_P(AlgorithmTest, SingleEdge) {
  const EdgeList g = EdgeList::from_undirected_pairs(
      std::vector<Edge>{{0, 1}});
  EXPECT_EQ(GetParam().fn(g), 0u);
}

TEST_P(AlgorithmTest, AgreesWithForwardOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const EdgeList g = gen::erdos_renyi(300, 2500, seed);
    EXPECT_EQ(GetParam().fn(g), count_forward(g)) << "seed " << seed;
  }
}

TEST_P(AlgorithmTest, AgreesWithForwardOnSkewedGraphs) {
  gen::RmatParams params;
  params.scale = 9;
  params.edge_factor = 10;
  const EdgeList g = gen::rmat(params, 77);
  EXPECT_EQ(GetParam().fn(g), count_forward(g));
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmTest,
                         ::testing::ValuesIn(kAlgorithms),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(MulticoreTest, MatchesSequentialForward) {
  prim::ThreadPool pool(4);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const EdgeList g = gen::barabasi_albert(1000, 6, seed);
    EXPECT_EQ(count_forward_multicore(g, pool), count_forward(g));
  }
}

TEST(MulticoreTest, SingleThreadPoolWorks) {
  prim::ThreadPool pool(1);
  const EdgeList g = gen::erdos_renyi(200, 1500, 3);
  EXPECT_EQ(count_forward_multicore(g, pool), count_forward(g));
}

TEST(AdjacencyInputTest, MatchesEdgeArrayInput) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const EdgeList g = gen::erdos_renyi(400, 3000, seed + 10);
    const Csr adjacency = edge_array_to_adjacency(g);
    EXPECT_EQ(count_forward_from_adjacency(adjacency), count_forward(g));
  }
}

TEST(CountingPhaseTest, MatchesFullPipeline) {
  const EdgeList g = gen::watts_strogatz(500, 5, 0.1, 2);
  const Csr oriented = oriented_csr(g);
  EXPECT_EQ(count_forward_counting_phase(oriented), count_forward(g));
}

TEST(PerVertexTest, SumsToThreeTimesTotal) {
  const EdgeList g = gen::erdos_renyi(300, 3000, 5);
  const auto per_vertex = per_vertex_triangles(g);
  const TriangleCount sum =
      std::accumulate(per_vertex.begin(), per_vertex.end(), TriangleCount{0});
  EXPECT_EQ(sum, 3 * count_forward(g));
}

TEST(PerVertexTest, DisjointTrianglesGiveOnePerVertex) {
  const gen::ReferenceGraph g = gen::disjoint_triangles(5);
  const auto per_vertex = per_vertex_triangles(g.edges);
  for (VertexId v = 0; v < 15; ++v) EXPECT_EQ(per_vertex[v], 1u);
}

TEST(PerVertexTest, WindmillCenterInEveryTriangle) {
  const gen::ReferenceGraph g = gen::windmill(3, 7);  // 7 triangles at hub
  const auto per_vertex = per_vertex_triangles(g.edges);
  EXPECT_EQ(per_vertex[0], 7u);
}

// Degenerate but valid inputs.
TEST(EdgeCaseTest, IsolatedVerticesDoNotCrash) {
  const EdgeList g(std::vector<Edge>{{0, 9}, {9, 0}}, 20);
  for (const auto& algorithm : kAlgorithms) {
    EXPECT_EQ(algorithm.fn(g), 0u) << algorithm.name;
  }
}

TEST(EdgeCaseTest, TwoTrianglesSharingAnEdge) {
  // "Bowtie on an edge": {0,1,2} and {0,1,3} share edge (0,1).
  const EdgeList g = EdgeList::from_undirected_pairs(
      std::vector<Edge>{{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}});
  for (const auto& algorithm : kAlgorithms) {
    EXPECT_EQ(algorithm.fn(g), 2u) << algorithm.name;
  }
}

}  // namespace
}  // namespace trico::cpu
