// Robustness tests for the service layer: the fair multi-tenant queue, the
// per-backend circuit breaker, deadline/cancellation enforcement *during*
// execution, the watchdog's hard execution budget, multi-tenant overload
// isolation, and the randomized chaos storm. Every chaos outcome must be
// exact-or-cleanly-rejected: a kOk response carries the exact count, any
// other status carries a reason — never a wrong count, never a crash, never
// a stuck drain.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/reference.hpp"
#include "prim/fair_queue.hpp"
#include "service/chaos.hpp"
#include "service/request.hpp"
#include "service/router.hpp"
#include "service/scheduler.hpp"
#include "service/service.hpp"
#include "simt/fault.hpp"
#include "util/cancel.hpp"

namespace trico::service {
namespace {

std::shared_ptr<const EdgeList> share(EdgeList edges) {
  return std::make_shared<const EdgeList>(std::move(edges));
}

Request count_request(std::shared_ptr<const EdgeList> graph,
                      Backend backend = Backend::kAuto) {
  Request request;
  request.graph = std::move(graph);
  request.op = Operation::kCount;
  request.backend = backend;
  return request;
}

Response ok_response() {
  Response response;
  response.status = Status::kOk;
  return response;
}

void sleep_ms(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

// ---------------------------------------------------------------------------
// prim::FairQueue

TEST(FairQueueTest, PerKeyCapRejectsTenantNotQueue) {
  prim::FairQueue queue({.capacity = 8, .per_key_cap = 2});
  EXPECT_EQ(queue.try_push([] {}, "heavy"), prim::FairQueue::PushResult::kOk);
  EXPECT_EQ(queue.try_push([] {}, "heavy"), prim::FairQueue::PushResult::kOk);
  EXPECT_EQ(queue.try_push([] {}, "heavy"),
            prim::FairQueue::PushResult::kTenantFull);
  // The heavy tenant's cap does not consume the light tenant's room.
  EXPECT_EQ(queue.try_push([] {}, "light"), prim::FairQueue::PushResult::kOk);
  EXPECT_EQ(queue.depth(), 3u);
  EXPECT_EQ(queue.depth("heavy"), 2u);
  EXPECT_EQ(queue.rejected(), 1u);
}

TEST(FairQueueTest, GlobalCapacityStillBounds) {
  prim::FairQueue queue({.capacity = 2, .per_key_cap = 0});
  EXPECT_EQ(queue.try_push([] {}, "a"), prim::FairQueue::PushResult::kOk);
  EXPECT_EQ(queue.try_push([] {}, "b"), prim::FairQueue::PushResult::kOk);
  EXPECT_EQ(queue.try_push([] {}, "c"),
            prim::FairQueue::PushResult::kQueueFull);
}

TEST(FairQueueTest, RoundRobinInterleavesTenants) {
  prim::FairQueue queue({.capacity = 16});
  std::vector<std::string> order;
  for (int i = 0; i < 3; ++i) {
    (void)queue.try_push([&order] { order.push_back("a"); }, "a");
  }
  for (int i = 0; i < 3; ++i) {
    (void)queue.try_push([&order] { order.push_back("b"); }, "b");
  }
  for (int i = 0; i < 6; ++i) queue.pop()();
  // Equal weights: one task per tenant per round, not 3x "a" then 3x "b".
  const std::vector<std::string> expected = {"a", "b", "a", "b", "a", "b"};
  EXPECT_EQ(order, expected);
}

TEST(FairQueueTest, WeightsSkewServiceShare) {
  prim::FairQueue queue({.capacity = 32});
  std::vector<std::string> order;
  for (int i = 0; i < 6; ++i) {
    (void)queue.try_push([&order] { order.push_back("fast"); }, "fast", 0, 2.0);
    (void)queue.try_push([&order] { order.push_back("slow"); }, "slow", 0, 1.0);
  }
  // In the first 9 pops the weight-2 tenant should get ~2x the service of
  // the weight-1 tenant while both stay backlogged.
  int fast = 0;
  for (int i = 0; i < 9; ++i) {
    queue.pop()();
  }
  for (const std::string& who : order) fast += who == "fast" ? 1 : 0;
  EXPECT_EQ(fast, 6);  // 2-of-3 share of 9 pops
  for (int i = 0; i < 3; ++i) queue.pop()();  // drain the rest
}

TEST(FairQueueTest, PriorityOrdersWithinTenant) {
  prim::FairQueue queue({.capacity = 8});
  std::vector<int> order;
  (void)queue.try_push([&order] { order.push_back(0); }, "t", 0);
  (void)queue.try_push([&order] { order.push_back(2); }, "t", 2);
  (void)queue.try_push([&order] { order.push_back(1); }, "t", 1);
  for (int i = 0; i < 3; ++i) queue.pop()();
  const std::vector<int> expected = {2, 1, 0};
  EXPECT_EQ(order, expected);
}

TEST(FairQueueTest, CloseDrainsThenReturnsEmpty) {
  prim::FairQueue queue({.capacity = 8});
  std::atomic<int> ran{0};
  (void)queue.try_push([&ran] { ++ran; }, "t");
  queue.close();
  EXPECT_EQ(queue.try_push([] {}, "t"), prim::FairQueue::PushResult::kClosed);
  prim::FairQueue::Task task = queue.pop();
  ASSERT_TRUE(static_cast<bool>(task));
  task();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_FALSE(static_cast<bool>(queue.pop()));
}

// ---------------------------------------------------------------------------
// util::CancelToken

TEST(CancelTokenTest, FirstCauseWins) {
  util::CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.request_cancel(util::CancelCause::kDeadline));
  EXPECT_FALSE(token.request_cancel(util::CancelCause::kUser));
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.cause(), util::CancelCause::kDeadline);
  EXPECT_THROW(token.throw_if_cancelled(), util::OperationCancelled);
}

// ---------------------------------------------------------------------------
// Circuit breaker

RouterOptions fast_breaker_router() {
  RouterOptions options;
  options.breaker.failure_threshold = 2;
  options.breaker.open_backoff_ms = 20.0;
  options.breaker.backoff_multiplier = 2.0;
  options.breaker.max_backoff_ms = 200.0;
  return options;
}

TEST(BreakerTest, OpensAfterConsecutiveFaultsAndSkips) {
  BackendRouter router(fast_breaker_router());
  EXPECT_TRUE(router.admit(Backend::kGpu));
  router.record_fault(Backend::kGpu);
  EXPECT_TRUE(router.admit(Backend::kGpu));
  router.record_fault(Backend::kGpu);  // second consecutive fault: trips
  EXPECT_FALSE(router.admit(Backend::kGpu));
  const auto snaps = router.breaker_snapshots();
  const auto& gpu = snaps[static_cast<std::size_t>(Backend::kGpu)];
  EXPECT_EQ(gpu.state, BreakerState::kOpen);
  EXPECT_EQ(gpu.trips, 1u);
  EXPECT_EQ(gpu.skipped, 1u);
}

TEST(BreakerTest, HalfOpenProbeClosesOnSuccess) {
  BackendRouter router(fast_breaker_router());
  router.record_fault(Backend::kGpu);
  router.record_fault(Backend::kGpu);
  ASSERT_FALSE(router.admit(Backend::kGpu));
  sleep_ms(25.0);  // past the 20 ms backoff
  EXPECT_TRUE(router.admit(Backend::kGpu));  // the half-open probe
  // Only one probe at a time.
  EXPECT_FALSE(router.admit(Backend::kGpu));
  router.record_success(Backend::kGpu);
  EXPECT_TRUE(router.admit(Backend::kGpu));  // closed again
  const auto snaps = router.breaker_snapshots();
  EXPECT_EQ(snaps[static_cast<std::size_t>(Backend::kGpu)].state,
            BreakerState::kClosed);
}

TEST(BreakerTest, FailedProbeReopensWithLongerBackoff) {
  BackendRouter router(fast_breaker_router());
  router.record_fault(Backend::kGpu);
  router.record_fault(Backend::kGpu);
  sleep_ms(25.0);
  ASSERT_TRUE(router.admit(Backend::kGpu));
  router.record_fault(Backend::kGpu);  // probe fails
  const auto snaps = router.breaker_snapshots();
  const auto& gpu = snaps[static_cast<std::size_t>(Backend::kGpu)];
  EXPECT_EQ(gpu.state, BreakerState::kOpen);
  EXPECT_EQ(gpu.trips, 2u);
  EXPECT_GE(gpu.current_backoff_ms, 40.0);  // doubled
  EXPECT_FALSE(router.admit(Backend::kGpu));
}

TEST(BreakerTest, ReleaseFreesProbeWithoutVerdict) {
  BackendRouter router(fast_breaker_router());
  router.record_fault(Backend::kGpu);
  router.record_fault(Backend::kGpu);
  sleep_ms(25.0);
  ASSERT_TRUE(router.admit(Backend::kGpu));
  router.release(Backend::kGpu);  // e.g. the probe request was cancelled
  // The slot is free for the next probe; the breaker did not close.
  EXPECT_TRUE(router.admit(Backend::kGpu));
}

TEST(BreakerTest, CpuTierNeverBreaks) {
  BackendRouter router(fast_breaker_router());
  for (int i = 0; i < 8; ++i) router.record_fault(Backend::kCpuHybrid);
  EXPECT_TRUE(router.admit(Backend::kCpuHybrid));
}

TEST(BreakerTest, ServiceSkipsOpenTierAndStillServesExactly) {
  // Script enough kGpu faults to trip the breaker, then watch explicit-gpu
  // requests fall back to the CPU tier with the skip in the reason.
  ChaosPlan chaos;
  chaos.script({.site = ChaosSite::kBackendRun,
                .backend = Backend::kGpu,
                .occurrence = 1,
                .repeats = 2});
  ServiceOptions options;
  options.router.breaker.failure_threshold = 2;
  options.router.breaker.open_backoff_ms = 60'000.0;  // stays open for the test
  options.chaos = &chaos;
  TriangleService service(options);

  const auto graph = share(gen::complete(16).edges);
  const TriangleCount expected = gen::complete(16).expected_triangles;
  // Two faulted serves trip the breaker (both still land exactly via CPU).
  for (int i = 0; i < 2; ++i) {
    const Response r = service.execute(count_request(graph, Backend::kGpu));
    ASSERT_EQ(r.status, Status::kOk);
    EXPECT_EQ(r.triangles, expected);
    EXPECT_TRUE(r.degraded);
  }
  // Third serve: the tier is skipped outright, no chaos needed.
  const Response skipped = service.execute(count_request(graph, Backend::kGpu));
  ASSERT_EQ(skipped.status, Status::kOk);
  EXPECT_EQ(skipped.triangles, expected);
  EXPECT_NE(skipped.reason.find("skipped (circuit open)"), std::string::npos);
  const MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.breakers[static_cast<std::size_t>(Backend::kGpu)].state,
            BreakerState::kOpen);
  EXPECT_GE(metrics.breakers[static_cast<std::size_t>(Backend::kGpu)].skipped,
            1u);
}

// ---------------------------------------------------------------------------
// Scheduler edge cases: cancellation racing pause/resume, destructor drain,
// deadlines at dequeue vs during execution, the watchdog budget.

TEST(SchedulerEdgeTest, CancelDuringExecutionStopsTheWorker) {
  std::atomic<bool> started{false};
  RequestScheduler::Options options;
  options.workers = 1;
  RequestScheduler scheduler(
      options, [&](const Request&, ExecContext& ctx) {
        started.store(true);
        // Spin like a backend inner loop: poll the token cooperatively.
        while (!ctx.cancel->cancelled()) sleep_ms(0.2);
        ctx.cancel->throw_if_cancelled();
        return ok_response();
      });
  Request request;
  request.graph = share(gen::cycle(3).edges);
  Ticket ticket = scheduler.submit(std::move(request));
  while (!started.load()) sleep_ms(0.2);
  EXPECT_TRUE(ticket.cancel());  // satellite fix: observed mid-execution
  const Response& response = ticket.wait();
  EXPECT_EQ(response.status, Status::kCancelled);
  EXPECT_NE(response.reason.find("during execution"), std::string::npos);
}

TEST(SchedulerEdgeTest, PauseResumeRacingCancel) {
  RequestScheduler::Options options;
  options.workers = 2;
  options.queue_capacity = 64;
  RequestScheduler scheduler(options, [&](const Request&, ExecContext&) {
    return ok_response();
  });
  std::vector<Ticket> tickets;
  for (int round = 0; round < 20; ++round) {
    scheduler.pause();
    for (int i = 0; i < 4; ++i) {
      Request request;
      request.graph = share(gen::cycle(3).edges);
      tickets.push_back(scheduler.submit(std::move(request)));
    }
    // Cancel some while paused (still queued), race resume against it.
    std::thread canceller([&] {
      for (std::size_t i = tickets.size() - 4; i < tickets.size(); i += 2) {
        (void)tickets[i].cancel();
      }
    });
    scheduler.resume();
    canceller.join();
  }
  for (Ticket& ticket : tickets) {
    const Status status = ticket.wait().status;
    EXPECT_TRUE(status == Status::kOk || status == Status::kCancelled);
  }
}

TEST(SchedulerEdgeTest, DestructorDrainsFullMultiTenantQueue) {
  std::atomic<int> served{0};
  std::vector<Ticket> tickets;
  {
    RequestScheduler::Options options;
    options.workers = 2;
    options.queue_capacity = 32;
    options.per_tenant_queue_cap = 8;
    RequestScheduler scheduler(options, [&](const Request&, ExecContext&) {
      ++served;
      return ok_response();
    });
    scheduler.pause();
    const char* tenants[] = {"a", "b", "c", "d"};
    for (const char* tenant : tenants) {
      for (int i = 0; i < 8; ++i) {
        Request request;
        request.graph = share(gen::cycle(3).edges);
        request.tenant_id = tenant;
        tickets.push_back(scheduler.submit(std::move(request)));
      }
    }
    EXPECT_EQ(scheduler.queue_depth(), 32u);
    scheduler.resume();
    // Destructor runs here with (most of) the queue still full.
  }
  // Graceful drain: every admitted request reached a terminal state.
  int ok = 0;
  for (Ticket& ticket : tickets) {
    ASSERT_TRUE(ticket.done());
    ok += ticket.wait().status == Status::kOk ? 1 : 0;
  }
  EXPECT_EQ(ok, 32);
  EXPECT_EQ(served.load(), 32);
}

TEST(SchedulerEdgeTest, DeadlineAtDequeueVsDuringExecution) {
  RequestScheduler::Options options;
  options.workers = 1;
  options.watchdog_interval_ms = 1.0;
  RequestScheduler scheduler(
      options, [&](const Request&, ExecContext& ctx) {
        const auto start = std::chrono::steady_clock::now();
        while (std::chrono::steady_clock::now() - start <
               std::chrono::milliseconds(200)) {
          ctx.cancel->throw_if_cancelled();
          sleep_ms(0.5);
        }
        return ok_response();
      });

  // Expired while queued: pause so the deadline passes before dequeue.
  scheduler.pause();
  Request queued;
  queued.graph = share(gen::cycle(3).edges);
  queued.deadline_ms = 5;
  Ticket queued_ticket = scheduler.submit(std::move(queued));
  sleep_ms(15.0);
  scheduler.resume();
  const Response& at_dequeue = queued_ticket.wait();
  EXPECT_EQ(at_dequeue.status, Status::kDeadlineExpired);
  EXPECT_NE(at_dequeue.reason.find("in queue"), std::string::npos);

  // Expired mid-execution: dequeues immediately, the 200 ms serve blows a
  // 30 ms deadline, the watchdog cancels, the loop unwinds.
  Request running;
  running.graph = share(gen::cycle(3).edges);
  running.deadline_ms = 30;
  Ticket running_ticket = scheduler.submit(std::move(running));
  const Response& during = running_ticket.wait();
  EXPECT_EQ(during.status, Status::kDeadlineExpired);
  EXPECT_NE(during.reason.find("during execution"), std::string::npos);
}

TEST(SchedulerEdgeTest, WatchdogEnforcesHardExecutionBudget) {
  RequestScheduler::Options options;
  options.workers = 1;
  options.max_execution_ms = 20;
  options.watchdog_interval_ms = 1.0;
  RequestScheduler scheduler(
      options, [&](const Request&, ExecContext& ctx) {
        for (;;) {  // no deadline on the request: only the budget stops this
          ctx.cancel->throw_if_cancelled();
          sleep_ms(0.5);
        }
        return ok_response();
      });
  Request request;
  request.graph = share(gen::cycle(3).edges);
  Ticket ticket = scheduler.submit(std::move(request));
  const Response& response = ticket.wait();
  EXPECT_EQ(response.status, Status::kDeadlineExpired);
  EXPECT_NE(response.reason.find("watchdog"), std::string::npos);
  EXPECT_EQ(scheduler.watchdog_flags(), 1u);
}

// ---------------------------------------------------------------------------
// Tenant isolation under overload

TEST(TenantTest, HeavyTenantCannotStarveLightTenants) {
  // One heavy tenant floods; seven light tenants trickle with deadlines.
  // Isolation holds when every light request completes within its deadline
  // and the overflow lands on the heavy tenant as clean backpressure.
  ServiceOptions options;
  options.scheduler.workers = 2;
  options.scheduler.queue_capacity = 32;
  options.scheduler.per_tenant_queue_cap = 8;
  options.scheduler.tenant_weights["heavy"] = 1.0;
  options.scheduler.default_tenant_weight = 1.0;
  TriangleService service(options);

  const auto graph = share(gen::complete(24).edges);
  const TriangleCount expected = gen::complete(24).expected_triangles;

  std::atomic<bool> stop{false};
  std::vector<Ticket> heavy_tickets;
  std::mutex heavy_mutex;
  std::thread heavy([&] {
    while (!stop.load()) {
      // Explicit simulated-GPU requests: expensive enough to back the queue
      // up against the tenant cap. Flood while admitted, back off a little
      // on rejection so the ticket pile stays bounded.
      Request request = count_request(graph, Backend::kGpu);
      request.tenant_id = "heavy";
      Ticket ticket = service.submit(std::move(request));
      const bool rejected =
          ticket.done() && ticket.wait().status == Status::kRejectedQueueFull;
      {
        std::lock_guard lock(heavy_mutex);
        heavy_tickets.push_back(std::move(ticket));
      }
      if (rejected) sleep_ms(0.5);
    }
  });

  constexpr int kLightTenants = 7;
  constexpr int kRequestsEach = 6;
  std::vector<std::thread> lights;
  std::vector<std::vector<Response>> light_responses(kLightTenants);
  for (int t = 0; t < kLightTenants; ++t) {
    lights.emplace_back([&, t] {
      for (int i = 0; i < kRequestsEach; ++i) {
        Request request = count_request(graph);
        request.tenant_id = "light-" + std::to_string(t);
        request.deadline_ms = 2000;
        light_responses[t].push_back(service.execute(std::move(request)));
        sleep_ms(2.0);
      }
    });
  }
  for (std::thread& thread : lights) thread.join();
  stop.store(true);
  heavy.join();

  for (int t = 0; t < kLightTenants; ++t) {
    for (const Response& response : light_responses[t]) {
      ASSERT_EQ(response.status, Status::kOk)
          << "light tenant starved: " << response.reason;
      EXPECT_EQ(response.triangles, expected);
    }
  }
  // The heavy tenant's flood hit its cap: clean rejections, no exceptions.
  std::uint64_t heavy_rejected = 0;
  for (Ticket& ticket : heavy_tickets) {
    const Response& response = ticket.wait();
    if (response.status == Status::kRejectedQueueFull) {
      ++heavy_rejected;
      EXPECT_NE(response.reason.find("tenant 'heavy'"), std::string::npos);
    }
  }
  EXPECT_GT(heavy_rejected, 0u);

  const MetricsSnapshot metrics = service.metrics();
  ASSERT_TRUE(metrics.tenants.count("heavy"));
  EXPECT_EQ(metrics.tenants.at("heavy").rejected_queue_full, heavy_rejected);
  for (int t = 0; t < kLightTenants; ++t) {
    const std::string id = "light-" + std::to_string(t);
    ASSERT_TRUE(metrics.tenants.count(id));
    EXPECT_EQ(metrics.tenants.at(id).ok,
              static_cast<std::uint64_t>(kRequestsEach));
  }
}

// ---------------------------------------------------------------------------
// Chaos

TEST(ChaosTest, ScriptedCatalogFaultFailsCleanly) {
  ChaosPlan chaos;
  chaos.script({.site = ChaosSite::kCatalogBuild, .occurrence = 1});
  ServiceOptions options;
  options.chaos = &chaos;
  TriangleService service(options);
  const auto graph = share(gen::complete(12).edges);
  const Response failed = service.execute(count_request(graph));
  EXPECT_EQ(failed.status, Status::kFailed);
  EXPECT_NE(failed.reason.find("catalog build failure"), std::string::npos);
  // The plan is spent: the next serve is healthy and exact.
  const Response ok = service.execute(count_request(graph));
  ASSERT_EQ(ok.status, Status::kOk);
  EXPECT_EQ(ok.triangles, gen::complete(12).expected_triangles);
}

TEST(ChaosTest, ScriptedDelayTripsDeadlineDuringExecution) {
  ChaosPlan chaos;
  chaos.script({.site = ChaosSite::kExecuteDelay,
                .occurrence = 1,
                .delay_ms = 120.0});
  ServiceOptions options;
  options.chaos = &chaos;
  options.scheduler.watchdog_interval_ms = 1.0;
  TriangleService service(options);
  Request request = count_request(share(gen::complete(12).edges));
  request.deadline_ms = 25;
  const Response response = service.execute(std::move(request));
  EXPECT_EQ(response.status, Status::kDeadlineExpired);
  EXPECT_NE(response.reason.find("during execution"), std::string::npos);
}

TEST(ChaosTest, RandomizedStormIsExactOrCleanlyRejected) {
  // A seeded storm of backend faults, catalog failures and slow executions
  // over a mixed multi-tenant workload. Invariants: every response is
  // either exactly right or a clean non-kOk with a reason; the service
  // drains; the metrics account every submission.
  ChaosPlan chaos;
  chaos.randomize(20260806, {.catalog_fault_rate = 0.10,
                             .backend_fault_rate = 0.25,
                             .delay_rate = 0.15,
                             .max_delay_ms = 8.0});
  ServiceOptions options;
  options.scheduler.workers = 3;
  options.scheduler.queue_capacity = 24;
  options.scheduler.per_tenant_queue_cap = 12;
  options.scheduler.max_execution_ms = 2000;
  options.router.breaker.failure_threshold = 3;
  options.router.breaker.open_backoff_ms = 10.0;
  options.chaos = &chaos;
  std::uint64_t submitted = 0;
  std::vector<Response> responses;
  {
    TriangleService service(options);
    const auto complete = share(gen::complete(20).edges);
    const auto windmill = share(gen::windmill(6, 8).edges);
    const TriangleCount complete_expected = gen::complete(20).expected_triangles;
    const TriangleCount windmill_expected = gen::windmill(6, 8).expected_triangles;

    constexpr int kClients = 4;
    constexpr int kRequestsEach = 30;
    std::vector<std::thread> clients;
    std::vector<std::vector<Response>> per_client(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < kRequestsEach; ++i) {
          const bool big = (c + i) % 2 == 0;
          Request request = count_request(
              big ? complete : windmill,
              i % 3 == 0 ? Backend::kGpu : Backend::kAuto);
          request.tenant_id = "client-" + std::to_string(c);
          if (i % 4 == 0) request.deadline_ms = 500;
          per_client[c].push_back(service.execute(std::move(request)));
        }
      });
    }
    for (std::thread& thread : clients) thread.join();

    for (int c = 0; c < kClients; ++c) {
      for (std::size_t i = 0; i < per_client[c].size(); ++i) {
        const Response& response = per_client[c][i];
        const bool big = (c + static_cast<int>(i)) % 2 == 0;
        if (response.status == Status::kOk) {
          EXPECT_EQ(response.triangles,
                    big ? complete_expected : windmill_expected)
              << "chaos corrupted an exact count";
        } else {
          EXPECT_FALSE(response.reason.empty())
              << "rejection without a reason";
        }
        responses.push_back(response);
      }
    }
    submitted = service.metrics().submitted;
    // Destructor: the drain must complete despite the storm.
  }
  EXPECT_EQ(submitted, responses.size());
  EXPECT_GT(chaos.fired(), 0u);
}

TEST(ChaosTest, TenantSlicesSumToGlobalCounters) {
  ServiceOptions options;
  TriangleService service(options);
  const auto graph = share(gen::complete(12).edges);
  for (int i = 0; i < 5; ++i) {
    Request request = count_request(graph);
    request.tenant_id = i % 2 == 0 ? "even" : "odd";
    (void)service.execute(std::move(request));
  }
  const MetricsSnapshot metrics = service.metrics();
  std::uint64_t sum_ok = 0, sum_completed = 0;
  for (const auto& [id, tenant] : metrics.tenants) {
    sum_ok += tenant.ok;
    sum_completed += tenant.completed;
  }
  EXPECT_EQ(sum_ok, metrics.ok);
  EXPECT_EQ(sum_completed, metrics.completed);
  EXPECT_EQ(metrics.tenants.at("even").ok, 3u);
  EXPECT_EQ(metrics.tenants.at("odd").ok, 2u);
}

// ---------------------------------------------------------------------------
// ChaosPlan determinism: the fault schedule is a pure function of the seed
// and the probe sequence — reruns reproduce the same storm, which is what
// makes a chaos failure debuggable.

TEST(ChaosDeterminismTest, SameSeedSameProbeSequenceSameSchedule) {
  const ChaosPlan::RandomOptions rates{.catalog_fault_rate = 0.2,
                                       .backend_fault_rate = 0.3,
                                       .delay_rate = 0.25,
                                       .max_delay_ms = 4.0,
                                       .torn_frame_rate = 0.15,
                                       .conn_reset_rate = 0.1,
                                       .wire_delay_rate = 0.2,
                                       .max_wire_delay_ms = 3.0,
                                       .worker_kill_rate = 0.05};
  // An interleaved probe walk over every site, run twice from the same
  // seed: the two fault schedules must be identical, decision by decision
  // (including the random delay magnitudes).
  const auto walk = [&](std::uint64_t seed) {
    ChaosPlan plan;
    plan.randomize(seed, rates);
    std::vector<double> schedule;
    for (int i = 0; i < 400; ++i) {
      switch (i % 6) {
        case 0:
          schedule.push_back(plan.should_fault(ChaosSite::kCatalogBuild));
          break;
        case 1:
          schedule.push_back(
              plan.should_fault(ChaosSite::kBackendRun, Backend::kGpu));
          break;
        case 2: schedule.push_back(plan.execute_delay_ms()); break;
        case 3:
          schedule.push_back(plan.should_fault(ChaosSite::kWireTornFrame));
          break;
        case 4: schedule.push_back(plan.wire_delay_ms()); break;
        case 5:
          schedule.push_back(plan.should_fault(ChaosSite::kWireWorkerKill));
          break;
      }
    }
    return schedule;
  };

  const std::vector<double> first = walk(99);
  const std::vector<double> second = walk(99);
  EXPECT_EQ(first, second) << "same seed diverged across runs";

  const std::vector<double> other = walk(100);
  EXPECT_NE(first, other) << "different seeds produced the same storm";

  double fired = 0;
  for (const double v : first) fired += v > 0 ? 1 : 0;
  EXPECT_GT(fired, 0) << "rates this high must fire in 400 probes";
}

TEST(ChaosDeterminismTest, ScriptedFireCountInvariantAcrossThreadCounts) {
  // A scripted spec fires on a fixed *count* of probes no matter how many
  // threads race to probe it: total fired is exactly `repeats` whether one
  // thread or eight drive the plan. (Which thread wins varies; how many
  // faults strike does not — the schedule's shape is thread-count
  // invariant.)
  for (const int threads : {1, 2, 8}) {
    ChaosPlan plan;
    plan.script({.site = ChaosSite::kWireTornFrame,
                 .occurrence = 5,
                 .repeats = 3});
    constexpr int kProbesPerThread = 40;
    std::atomic<int> fired{0};
    std::vector<std::thread> probers;
    for (int t = 0; t < threads; ++t) {
      probers.emplace_back([&] {
        for (int i = 0; i < kProbesPerThread; ++i) {
          if (plan.should_fault(ChaosSite::kWireTornFrame)) ++fired;
        }
      });
    }
    for (std::thread& thread : probers) thread.join();
    EXPECT_EQ(fired.load(), 3) << "threads=" << threads;
    EXPECT_EQ(plan.fired(), 3u) << "threads=" << threads;
  }
}

TEST(ChaosDeterminismTest, RandomizedTotalInvariantAcrossThreadCounts) {
  // Randomized mode consumes one rng draw per miss-probe under the plan
  // mutex, so the *number* of faults in N total probes depends only on the
  // seed and N — not on how the probes were spread across threads.
  const auto storm_total = [&](int threads) {
    ChaosPlan plan;
    plan.randomize(4242, {.torn_frame_rate = 0.25});
    const int total_probes = 240;
    const int per_thread = total_probes / threads;
    std::vector<std::thread> probers;
    for (int t = 0; t < threads; ++t) {
      probers.emplace_back([&] {
        for (int i = 0; i < per_thread; ++i) {
          (void)plan.should_fault(ChaosSite::kWireTornFrame);
        }
      });
    }
    for (std::thread& thread : probers) thread.join();
    return plan.fired();
  };
  const std::uint64_t solo = storm_total(1);
  EXPECT_EQ(storm_total(2), solo);
  EXPECT_EQ(storm_total(8), solo);
  EXPECT_GT(solo, 0u);
}

}  // namespace
}  // namespace trico::service
