// Unit tests for the graph core: EdgeList invariants, CSR construction,
// orientation, conversions, IO, and statistics.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>

#include "graph/conversion.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/io.hpp"
#include "graph/orientation.hpp"
#include "graph/stats.hpp"
#include "graph/types.hpp"

namespace trico {
namespace {

TEST(EdgeTest, PackUnpackRoundTrip) {
  const Edge e{123456, 789012};
  EXPECT_EQ(unpack_edge(pack_edge(e)), e);
  EXPECT_EQ(unpack_edge_le(pack_edge_le(e)), e);
}

TEST(EdgeTest, PackOrdersByFirstVertex) {
  EXPECT_LT(pack_edge({1, 9}), pack_edge({2, 0}));
  EXPECT_LT(pack_edge({1, 2}), pack_edge({1, 3}));
}

TEST(EdgeTest, PackLeOrdersBySecondVertex) {
  EXPECT_LT(pack_edge_le({9, 1}), pack_edge_le({0, 2}));
}

TEST(EdgeListTest, FromUndirectedPairsEmitsBothDirections) {
  const std::vector<Edge> pairs{{0, 1}, {1, 2}};
  const EdgeList list = EdgeList::from_undirected_pairs(pairs);
  EXPECT_EQ(list.num_edge_slots(), 4u);
  EXPECT_EQ(list.num_edges(), 2u);
  EXPECT_EQ(list.num_vertices(), 3u);
  EXPECT_TRUE(list.validate().ok);
}

TEST(EdgeListTest, FromUndirectedPairsDropsSelfLoopsAndDuplicates) {
  const std::vector<Edge> pairs{{0, 1}, {1, 0}, {2, 2}, {0, 1}};
  const EdgeList list = EdgeList::from_undirected_pairs(pairs);
  EXPECT_EQ(list.num_edges(), 1u);
  EXPECT_TRUE(list.validate().ok);
}

TEST(EdgeListTest, ValidateDetectsSelfLoop) {
  const EdgeList list(std::vector<Edge>{{1, 1}});
  const ValidationReport report = list.validate();
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.self_loops, 1u);
}

TEST(EdgeListTest, ValidateDetectsAsymmetry) {
  const EdgeList list(std::vector<Edge>{{0, 1}});
  const ValidationReport report = list.validate();
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.asymmetric, 1u);
}

TEST(EdgeListTest, ValidateDetectsDuplicates) {
  const EdgeList list(std::vector<Edge>{{0, 1}, {0, 1}, {1, 0}});
  const ValidationReport report = list.validate();
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.duplicate_slots, 1u);
}

TEST(EdgeListTest, CanonicalizedRepairsArbitraryInput) {
  const EdgeList raw(std::vector<Edge>{{0, 1}, {0, 1}, {1, 1}, {2, 0}});
  const EdgeList fixed = raw.canonicalized();
  EXPECT_TRUE(fixed.validate().ok);
  EXPECT_EQ(fixed.num_edges(), 2u);  // {0,1} and {0,2}
}

TEST(EdgeListTest, SoARoundTrip) {
  const EdgeList list = EdgeList::from_undirected_pairs(
      std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}});
  const EdgeListSoA soa = list.to_soa();
  EXPECT_EQ(soa.size(), list.num_edge_slots());
  const EdgeList back = EdgeList::from_soa(soa, list.num_vertices());
  EXPECT_EQ(back, list);
}

TEST(EdgeListTest, DegreesMatchSlots) {
  const EdgeList list = EdgeList::from_undirected_pairs(
      std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}});
  const auto deg = list.degrees();
  EXPECT_EQ(deg[0], 3u);
  EXPECT_EQ(deg[1], 1u);
  EXPECT_EQ(deg[2], 1u);
  EXPECT_EQ(deg[3], 1u);
}

TEST(EdgeListTest, ExplicitVertexCountAllowsIsolatedVertices) {
  const EdgeList list(std::vector<Edge>{{0, 1}, {1, 0}}, 10);
  EXPECT_EQ(list.num_vertices(), 10u);
  EXPECT_EQ(compute_stats(list).isolated_vertices, 8u);
}

TEST(CsrTest, BuildsSortedAdjacency) {
  const EdgeList list = EdgeList::from_undirected_pairs(
      std::vector<Edge>{{2, 0}, {0, 1}, {1, 2}});
  const Csr csr = Csr::from_edge_list(list);
  EXPECT_EQ(csr.num_vertices(), 3u);
  EXPECT_EQ(csr.num_edge_slots(), 6u);
  EXPECT_TRUE(csr.lists_strictly_sorted());
  EXPECT_EQ(csr.degree(0), 2u);
  ASSERT_EQ(csr.neighbors(0).size(), 2u);
  EXPECT_EQ(csr.neighbors(0)[0], 1u);
  EXPECT_EQ(csr.neighbors(0)[1], 2u);
}

TEST(CsrTest, HandlesIsolatedVertices) {
  const EdgeList list(std::vector<Edge>{{0, 3}, {3, 0}}, 5);
  const Csr csr = Csr::from_edge_list(list);
  EXPECT_EQ(csr.num_vertices(), 5u);
  EXPECT_EQ(csr.degree(1), 0u);
  EXPECT_EQ(csr.degree(2), 0u);
  EXPECT_EQ(csr.degree(4), 0u);
  EXPECT_EQ(csr.degree(3), 1u);
}

TEST(CsrTest, RejectsMalformedOffsets) {
  EXPECT_THROW(Csr({1, 2}, {0}), std::invalid_argument);
  EXPECT_THROW(Csr({0, 2}, {0}), std::invalid_argument);
  EXPECT_THROW(Csr({0, 2, 1}, {0, 1}), std::invalid_argument);
}

TEST(CsrTest, EdgeListRoundTrip) {
  const EdgeList list = EdgeList::from_undirected_pairs(
      std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  const Csr csr = Csr::from_edge_list(list);
  const EdgeList back = csr.to_edge_list();
  EXPECT_EQ(back.num_edge_slots(), list.num_edge_slots());
  EXPECT_TRUE(back.validate().ok);
}

TEST(OrientationTest, KeepsExactlyOneDirectionPerEdge) {
  const EdgeList list = EdgeList::from_undirected_pairs(
      std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const EdgeList oriented = orient_forward(list);
  EXPECT_EQ(oriented.num_edge_slots(), list.num_edges());
}

TEST(OrientationTest, OrientsLowDegreeToHighDegree) {
  // Star: hub 0 has degree 3, leaves degree 1 -> all edges point to hub.
  const EdgeList list = EdgeList::from_undirected_pairs(
      std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}});
  const EdgeList oriented = orient_forward(list);
  for (const Edge& e : oriented.edges()) {
    EXPECT_EQ(e.v, 0u) << "edge should point at the hub";
  }
}

TEST(OrientationTest, TieBreaksById) {
  // Triangle: all degrees equal; orientation must use vertex id.
  const EdgeList list = EdgeList::from_undirected_pairs(
      std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}});
  const EdgeList oriented = orient_forward(list);
  for (const Edge& e : oriented.edges()) {
    EXPECT_LT(e.u, e.v);
  }
}

TEST(OrientationTest, OrientedListsBoundedBySqrt2m) {
  // Theory (§II-B): no oriented adjacency list exceeds sqrt(2m).
  std::vector<Edge> pairs;
  // A skewed graph: hub connected to everyone + a chain.
  for (VertexId v = 1; v < 200; ++v) pairs.push_back({0, v});
  for (VertexId v = 1; v + 1 < 200; ++v)
    pairs.push_back({v, static_cast<VertexId>(v + 1)});
  const EdgeList list = EdgeList::from_undirected_pairs(pairs);
  const Csr oriented = oriented_csr(list);
  const double bound = std::sqrt(2.0 * static_cast<double>(list.num_edges()));
  EXPECT_LE(static_cast<double>(max_oriented_degree(oriented)), bound + 1);
}

TEST(OrientationTest, OrientByIdKeepsOneDirection) {
  const EdgeList list = EdgeList::from_undirected_pairs(
      std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}});
  const EdgeList oriented = orient_by_id(list);
  EXPECT_EQ(oriented.num_edge_slots(), 3u);
  for (const Edge& e : oriented.edges()) EXPECT_LT(e.u, e.v);
}

TEST(ConversionTest, AdjacencyEdgeArrayRoundTrip) {
  const EdgeList list = EdgeList::from_undirected_pairs(
      std::vector<Edge>{{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  const Csr adjacency = edge_array_to_adjacency(list);
  const EdgeList back = adjacency_to_edge_array(adjacency);
  EXPECT_EQ(back.num_edge_slots(), list.num_edge_slots());
  EXPECT_TRUE(back.validate().ok);
}

TEST(IoTest, TextRoundTrip) {
  const EdgeList list = EdgeList::from_undirected_pairs(
      std::vector<Edge>{{0, 1}, {1, 2}, {2, 0}});
  std::stringstream stream;
  io::write_text(stream, list);
  const EdgeList back = io::read_text(stream);
  EXPECT_EQ(back.num_edges(), list.num_edges());
  EXPECT_TRUE(back.validate().ok);
}

TEST(IoTest, TextParsesCommentsAndBlankLines) {
  std::stringstream stream("# header\n\n0 1\n1 2 # trailing comment\n");
  const EdgeList list = io::read_text(stream);
  EXPECT_EQ(list.num_edges(), 2u);
}

TEST(IoTest, TextRejectsMalformedLines) {
  std::stringstream one_token("0\n");
  EXPECT_THROW(io::read_text(one_token), io::IoError);
  std::stringstream three_tokens("0 1 2\n");
  EXPECT_THROW(io::read_text(three_tokens), io::IoError);
}

TEST(IoTest, BinaryRoundTripPreservesSlotsVerbatim) {
  const EdgeList list(std::vector<Edge>{{3, 1}, {0, 2}}, 7);
  std::stringstream stream;
  io::write_binary(stream, list);
  const EdgeList back = io::read_binary(stream);
  EXPECT_EQ(back, list);
}

TEST(IoTest, BinaryRejectsBadMagic) {
  std::stringstream stream("NOTTRICO........");
  EXPECT_THROW(io::read_binary(stream), io::IoError);
}

TEST(IoTest, BinaryRejectsTruncation) {
  const EdgeList list(std::vector<Edge>{{0, 1}, {1, 0}}, 2);
  std::stringstream stream;
  io::write_binary(stream, list);
  std::string data = stream.str();
  data.resize(data.size() - 4);
  std::stringstream truncated(data);
  EXPECT_THROW(io::read_binary(truncated), io::IoError);
}

TEST(IoTest, TextLenientSkipsMalformedLinesAndReportsCount) {
  std::stringstream in("0 1\nbogus tokens\n2\n1 2\n3 4 5\n");
  std::size_t skipped = ~std::size_t{0};
  const EdgeList list =
      io::read_text(in, io::ParseMode::lenient, &skipped);
  EXPECT_EQ(skipped, 3u);  // non-numeric, one-token, and trailing-token lines
  EXPECT_EQ(list.num_edges(), 2u);
}

TEST(IoTest, TextLenientReportsZeroSkipsOnCleanInput) {
  std::stringstream in("# comment\n0 1\n\n1 2\n");
  std::size_t skipped = ~std::size_t{0};
  const EdgeList list =
      io::read_text(in, io::ParseMode::lenient, &skipped);
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(list.num_edges(), 2u);
}

TEST(IoTest, TextStrictErrorNamesTheLine) {
  std::stringstream in("0 1\n7\n");
  try {
    (void)io::read_text(in);
    FAIL() << "strict mode must reject the one-token line";
  } catch (const io::IoError& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
}

TEST(IoTest, BinaryRejectsOversizedStream) {
  const EdgeList list(std::vector<Edge>{{0, 1}, {1, 0}}, 2);
  std::stringstream stream;
  io::write_binary(stream, list);
  std::string data = stream.str() + std::string(8, '\0');
  std::stringstream oversized(data);
  EXPECT_THROW(io::read_binary(oversized), io::IoError);
}

TEST(IoTest, BinaryRejectsBogusSlotCountBeforeAllocating) {
  // A corrupted header declaring ~1e18 slots must be rejected by the size
  // cross-check (or the overflow guard), never turned into an allocation.
  const EdgeList list(std::vector<Edge>{{0, 1}, {1, 0}}, 2);
  std::stringstream stream;
  io::write_binary(stream, list);
  std::string data = stream.str();
  const std::size_t slots_offset = 8 + 4 + 4;  // magic, version, n
  const std::uint64_t huge = std::uint64_t{1} << 60;
  std::memcpy(data.data() + slots_offset, &huge, sizeof(huge));
  std::stringstream corrupt(data);
  EXPECT_THROW(io::read_binary(corrupt), io::IoError);

  const std::uint64_t overflowing = ~std::uint64_t{0} - 1;
  std::memcpy(data.data() + slots_offset, &overflowing, sizeof(overflowing));
  std::stringstream wrapped(data);
  EXPECT_THROW(io::read_binary(wrapped), io::IoError);
}

TEST(StatsTest, ComputesBasicStats) {
  const EdgeList list = EdgeList::from_undirected_pairs(
      std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}});
  const GraphStats stats = compute_stats(list);
  EXPECT_EQ(stats.num_vertices, 4u);
  EXPECT_EQ(stats.num_edges, 3u);
  EXPECT_EQ(stats.max_degree, 3u);
  EXPECT_DOUBLE_EQ(stats.avg_degree, 1.5);
  EXPECT_GT(stats.degree_stddev, 0.0);
}

TEST(StatsTest, DegreeHistogramSumsToVertexCount) {
  const EdgeList list = EdgeList::from_undirected_pairs(
      std::vector<Edge>{{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  const auto histogram = degree_histogram(list);
  std::uint64_t total = 0;
  for (auto count : histogram) total += count;
  EXPECT_EQ(total, list.num_vertices());
}

}  // namespace
}  // namespace trico
