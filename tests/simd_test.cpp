// SIMD intersection-kernel layer: every ISA tier must be bit-identical to
// the scalar reference — on the raw kernels (adversarial lengths straddling
// the 4/8-wide block boundaries, misaligned bases, truncated bitmap rows)
// and through the whole engine (triangle counts AND dispatch stats across
// forced ISA levels on the generator + adversarial graph matrix). All list
// and row buffers are exact-size heap allocations so ASan turns any
// out-of-span vector load into a hard failure.

#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "cpu/counting.hpp"
#include "cpu/hybrid_engine.hpp"
#include "cpu/simd/intersect.hpp"
#include "gen/generators.hpp"

namespace trico {
namespace {

using cpu::simd::IntersectKernels;
using cpu::simd::IsaLevel;
using cpu::simd::IsaRequest;

/// RAII override of TRICO_FORCE_ISA; restores the prior value on scope exit.
class ForceIsaGuard {
 public:
  explicit ForceIsaGuard(const char* value) {
    const char* prior = std::getenv("TRICO_FORCE_ISA");
    had_prior_ = prior != nullptr;
    if (had_prior_) prior_ = prior;
    if (value != nullptr) {
      ::setenv("TRICO_FORCE_ISA", value, 1);
    } else {
      ::unsetenv("TRICO_FORCE_ISA");
    }
  }
  ~ForceIsaGuard() {
    if (had_prior_) {
      ::setenv("TRICO_FORCE_ISA", prior_.c_str(), 1);
    } else {
      ::unsetenv("TRICO_FORCE_ISA");
    }
  }

 private:
  bool had_prior_ = false;
  std::string prior_;
};

/// Every level the host can actually run (scalar always; clamping means the
/// others appear only when resolve would not degrade them).
std::vector<IsaLevel> supported_levels() {
  std::vector<IsaLevel> levels{IsaLevel::kScalar};
  const IsaLevel best = cpu::simd::detect_cpu_features().best();
  if (best >= IsaLevel::kSse42) levels.push_back(IsaLevel::kSse42);
  if (best >= IsaLevel::kAvx2) levels.push_back(IsaLevel::kAvx2);
  return levels;
}

IsaRequest request_for(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar: return IsaRequest::kScalar;
    case IsaLevel::kSse42: return IsaRequest::kSse42;
    case IsaLevel::kAvx2: return IsaRequest::kAvx2;
  }
  return IsaRequest::kAuto;
}

/// Sorted ascending duplicate-free list of exactly `n` ids, heap-exact.
std::vector<VertexId> sorted_list(std::size_t n, std::uint32_t seed,
                                  VertexId max_stride = 6) {
  std::mt19937 rng(seed);
  std::vector<VertexId> out;
  out.reserve(n);
  VertexId v = rng() % 4;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(v);
    v += 1 + rng() % max_stride;
  }
  return out;
}

// The boundary lengths the ISSUE pins: 0/1 (degenerate), 7/8/9 (one AVX2
// block ± 1, two SSE blocks ± 1), 31/32/33 (the gallop bisection cutoff and
// whole-block multiples ± 1).
const std::size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 31, 32, 33, 100};

TEST(SimdKernels, MergeMatchesScalarOnBoundaryLengths) {
  const IntersectKernels& scalar = cpu::simd::scalar_kernels();
  for (IsaLevel level : supported_levels()) {
    const IntersectKernels& kern = cpu::simd::kernels_for(level);
    EXPECT_EQ(kern.level, level);
    for (std::size_t la : kLengths) {
      for (std::size_t lb : kLengths) {
        // Two seeds: overlapping ranges with partial intersection.
        const std::vector<VertexId> a = sorted_list(la, 17 * la + lb + 1);
        const std::vector<VertexId> b = sorted_list(lb, 31 * lb + la + 2);
        EXPECT_EQ(kern.merge(a, b), scalar.merge(a, b))
            << "level=" << to_string(level) << " la=" << la << " lb=" << lb;
        EXPECT_EQ(kern.merge(b, a), scalar.merge(a, b));
        // Self-intersection: every element matches.
        EXPECT_EQ(kern.merge(a, a), static_cast<TriangleCount>(la));
      }
    }
  }
}

TEST(SimdKernels, GallopMatchesScalarOnBoundaryLengths) {
  const IntersectKernels& scalar = cpu::simd::scalar_kernels();
  for (IsaLevel level : supported_levels()) {
    const IntersectKernels& kern = cpu::simd::kernels_for(level);
    for (std::size_t ls : kLengths) {
      for (std::size_t ll : kLengths) {
        if (ls > ll) continue;  // gallop contract: shorter into longer
        const std::vector<VertexId> s = sorted_list(ls, 7 * ls + ll + 3);
        const std::vector<VertexId> l = sorted_list(ll, 13 * ll + ls + 4, 3);
        EXPECT_EQ(kern.gallop(s, l), scalar.gallop(s, l))
            << "level=" << to_string(level) << " ls=" << ls << " ll=" << ll;
        // Dense hit pattern: shorter is a strided subset of longer.
        if (ls > 0 && ll > 0) {
          std::vector<VertexId> subset;
          for (std::size_t i = 0; i < l.size(); i += 3) subset.push_back(l[i]);
          EXPECT_EQ(kern.gallop(subset, l),
                    static_cast<TriangleCount>(subset.size()));
        }
      }
    }
  }
}

TEST(SimdKernels, MergeAndGallopTolerateMisalignedBases) {
  const IntersectKernels& scalar = cpu::simd::scalar_kernels();
  // Spans starting 1/2/3 elements into the allocation: every vector load in
  // the kernels must be an unaligned load for these to pass under ASan.
  const std::vector<VertexId> a_store = sorted_list(67, 11);
  const std::vector<VertexId> b_store = sorted_list(70, 12);
  for (std::size_t off = 1; off <= 3; ++off) {
    const std::span<const VertexId> a(a_store.data() + off,
                                      a_store.size() - off);
    const std::span<const VertexId> b(b_store.data() + off,
                                      b_store.size() - off);
    for (IsaLevel level : supported_levels()) {
      const IntersectKernels& kern = cpu::simd::kernels_for(level);
      EXPECT_EQ(kern.merge(a, b), scalar.merge(a, b)) << "off=" << off;
      EXPECT_EQ(kern.gallop(a, b), scalar.gallop(a, b)) << "off=" << off;
    }
  }
}

TEST(SimdKernels, BitmapKernelsMatchScalarOnMisalignedRowTails) {
  const IntersectKernels& scalar = cpu::simd::scalar_kernels();
  // Word counts straddling the AVX2 AND-popcount unroll boundaries (4 words
  // per vector, 16 per unrolled iteration) — exact-size rows so any
  // overread of the tail trips ASan.
  for (std::uint64_t words : {std::uint64_t{1}, std::uint64_t{2},
                              std::uint64_t{3}, std::uint64_t{4},
                              std::uint64_t{5}, std::uint64_t{15},
                              std::uint64_t{16}, std::uint64_t{17},
                              std::uint64_t{19}}) {
    std::mt19937_64 rng(words * 1009);
    std::vector<std::uint64_t> row_a(words), row_b(words);
    for (std::uint64_t& w : row_a) w = rng();
    for (std::uint64_t& w : row_b) w = rng();
    const VertexId domain = static_cast<VertexId>(words * 64);
    std::vector<VertexId> probes;
    for (VertexId v = 1; v < domain; v += 1 + v % 5) probes.push_back(v);

    const TriangleCount probe_ref = scalar.bitmap_probe(row_a.data(), probes);
    const TriangleCount checked_ref =
        scalar.bitmap_probe_checked(row_a.data(), words, probes);
    const TriangleCount and_ref =
        scalar.bitmap_and_popcount(row_a.data(), row_b.data(), words);
    for (IsaLevel level : supported_levels()) {
      const IntersectKernels& kern = cpu::simd::kernels_for(level);
      EXPECT_EQ(kern.bitmap_probe(row_a.data(), probes), probe_ref)
          << "level=" << to_string(level) << " words=" << words;
      EXPECT_EQ(kern.bitmap_probe_checked(row_a.data(), words, probes),
                checked_ref);
      EXPECT_EQ(kern.bitmap_and_popcount(row_a.data(), row_b.data(), words),
                and_ref);
    }
  }
}

TEST(SimdKernels, ScratchMarkAndClearRoundTrip) {
  for (IsaLevel level : supported_levels()) {
    const IntersectKernels& kern = cpu::simd::kernels_for(level);
    const std::vector<VertexId> ids = sorted_list(150, 5 * 1000 + 1, 9);
    const std::uint64_t words = (static_cast<std::uint64_t>(ids.back()) + 64) / 64;
    std::vector<std::uint64_t> row(words, 0);
    kern.scratch_mark(row.data(), ids);
    // Every id's bit set, and the total popcount is exactly |ids| (no
    // spurious bits).
    std::uint64_t set_bits = 0;
    for (std::uint64_t w : row) set_bits += static_cast<std::uint64_t>(std::popcount(w));
    EXPECT_EQ(set_bits, ids.size()) << "level=" << to_string(level);
    for (VertexId v : ids) {
      EXPECT_TRUE((row[v >> 6] >> (v & 63)) & 1);
    }
    kern.scratch_clear(row.data(), ids);
    for (std::uint64_t w : row) EXPECT_EQ(w, 0u);
  }
}

TEST(SimdFeatures, RequestsClampDownNeverUp) {
  ForceIsaGuard guard(nullptr);  // make sure no ambient override interferes
  const IsaLevel best = cpu::simd::detect_cpu_features().best();
  EXPECT_EQ(cpu::simd::resolve_isa(IsaRequest::kScalar), IsaLevel::kScalar);
  EXPECT_LE(cpu::simd::resolve_isa(IsaRequest::kAvx2), best);
  EXPECT_LE(cpu::simd::resolve_isa(IsaRequest::kSse42), best);
  EXPECT_EQ(cpu::simd::resolve_isa(IsaRequest::kAuto), best);
}

TEST(SimdFeatures, EnvOverrideWinsOverProgrammaticRequest) {
  {
    ForceIsaGuard guard("scalar");
    EXPECT_EQ(cpu::simd::resolve_isa(IsaRequest::kAvx2), IsaLevel::kScalar);
    EXPECT_EQ(cpu::simd::resolve_isa(IsaRequest::kAuto), IsaLevel::kScalar);
    EXPECT_EQ(cpu::simd::select_kernels(IsaRequest::kAvx2).level,
              IsaLevel::kScalar);
  }
  {
    // Unknown values fall back to the programmatic request.
    ForceIsaGuard guard("quantum");
    EXPECT_EQ(cpu::simd::resolve_isa(IsaRequest::kScalar), IsaLevel::kScalar);
  }
  if (cpu::simd::detect_cpu_features().best() >= IsaLevel::kSse42) {
    // Both spellings of the SSE4.2 level parse.
    ForceIsaGuard guard("sse42");
    EXPECT_EQ(cpu::simd::resolve_isa(IsaRequest::kScalar), IsaLevel::kSse42);
    ForceIsaGuard guard2("sse4.2");
    EXPECT_EQ(cpu::simd::resolve_isa(IsaRequest::kScalar), IsaLevel::kSse42);
  }
}

// ---------------------------------------------------------------------------
// Differential engine tests: forced ISA levels must agree bit-for-bit on the
// count AND the per-strategy dispatch stats, over graphs that exercise every
// dispatch path.

EdgeList star(VertexId n) {
  std::vector<Edge> pairs;
  for (VertexId v = 1; v < n; ++v) pairs.push_back(Edge{0, v});
  return EdgeList::from_undirected_pairs(pairs, n);
}

EdgeList clique(VertexId n) {
  std::vector<Edge> pairs;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) pairs.push_back(Edge{u, v});
  }
  return EdgeList::from_undirected_pairs(pairs, n);
}

/// Clique core + star spokes + leaf ring: crosses the bitmap, gallop, and
/// merge dispatch paths in one graph (mirrors hybrid_engine_test).
EdgeList threshold_crosser() {
  std::vector<Edge> pairs;
  const VertexId core = 40, leaves = 400;
  for (VertexId u = 0; u < core; ++u) {
    for (VertexId v = u + 1; v < core; ++v) pairs.push_back(Edge{u, v});
  }
  for (VertexId v = 0; v < leaves; ++v) pairs.push_back(Edge{0, core + v});
  for (VertexId v = 0; v < leaves; ++v) {
    pairs.push_back(Edge{core + v, core + ((v + 1) % leaves)});
  }
  return EdgeList::from_undirected_pairs(pairs, core + leaves);
}

std::vector<std::pair<std::string, EdgeList>> differential_graphs() {
  std::vector<std::pair<std::string, EdgeList>> graphs;
  graphs.emplace_back("erdos_renyi", gen::erdos_renyi(300, 1800, 7));
  {
    gen::RmatParams params;
    params.scale = 9;
    params.edge_factor = 8;
    graphs.emplace_back("rmat", gen::rmat(params, 7));
  }
  graphs.emplace_back("barabasi_albert", gen::barabasi_albert(300, 4, 7));
  graphs.emplace_back("star", star(900));
  graphs.emplace_back("clique", clique(40));
  graphs.emplace_back("threshold_crosser", threshold_crosser());
  graphs.emplace_back("empty", EdgeList());
  return graphs;
}

std::vector<std::pair<std::string, cpu::EngineOptions>> differential_options() {
  std::vector<std::pair<std::string, cpu::EngineOptions>> options;
  options.emplace_back("adaptive_default", cpu::EngineOptions{});
  {
    cpu::EngineOptions o;
    o.strategy = cpu::IntersectStrategy::kMergeOnly;
    options.emplace_back("merge_only", o);
  }
  {
    cpu::EngineOptions o;
    o.strategy = cpu::IntersectStrategy::kGallopOnly;
    options.emplace_back("gallop_only", o);
  }
  {
    cpu::EngineOptions o;
    o.relabel_by_degree = false;  // full-domain bitmap rows + checked probes
    options.emplace_back("no_relabel", o);
  }
  {
    cpu::EngineOptions o;
    o.bitmap_word_budget = 1;  // every hot source takes the scratch-row path
    options.emplace_back("scratch_rows", o);
  }
  {
    cpu::EngineOptions o;
    o.skew_threshold = 1.0;  // gallop fires on nearly every non-bitmap pair
    o.bitmap_threshold = 2;  // and bitmap rows are nearly universal
    options.emplace_back("aggressive_thresholds", o);
  }
  return options;
}

TEST(SimdDifferential, AllIsaLevelsBitIdenticalAcrossMatrix) {
  ForceIsaGuard guard(nullptr);
  prim::ThreadPool pool(2);
  for (const auto& [graph_name, edges] : differential_graphs()) {
    const TriangleCount expected = cpu::count_forward(edges);
    for (const auto& [opt_name, base] : differential_options()) {
      cpu::PreparedGraph prepared = cpu::prepare(edges, pool, base);
      TriangleCount ref_count = 0;
      cpu::CountingStats ref_stats;
      bool first = true;
      for (IsaLevel level : supported_levels()) {
        prepared.options.isa = request_for(level);
        cpu::CountingStats stats;
        const TriangleCount got = cpu::count_prepared(prepared, pool, &stats);
        EXPECT_EQ(got, expected)
            << graph_name << "/" << opt_name << "@" << to_string(level);
        EXPECT_EQ(stats.isa, level);
        if (first) {
          ref_count = got;
          ref_stats = stats;
          first = false;
          continue;
        }
        EXPECT_EQ(got, ref_count)
            << graph_name << "/" << opt_name << "@" << to_string(level);
        EXPECT_EQ(stats.merge_edges, ref_stats.merge_edges)
            << graph_name << "/" << opt_name << "@" << to_string(level);
        EXPECT_EQ(stats.gallop_edges, ref_stats.gallop_edges)
            << graph_name << "/" << opt_name << "@" << to_string(level);
        EXPECT_EQ(stats.bitmap_edges, ref_stats.bitmap_edges)
            << graph_name << "/" << opt_name << "@" << to_string(level);
      }
    }
  }
}

TEST(SimdDifferential, EnvOverridePinsTheEngine) {
  ForceIsaGuard guard("scalar");
  prim::ThreadPool pool(2);
  const EdgeList edges = gen::erdos_renyi(200, 900, 3);
  cpu::CountingStats stats;
  const cpu::PreparedGraph prepared = cpu::prepare(edges, pool, {});
  const TriangleCount got = cpu::count_prepared(prepared, pool, &stats);
  EXPECT_EQ(got, cpu::count_forward(edges));
  EXPECT_EQ(stats.isa, IsaLevel::kScalar);  // despite EngineOptions::kAuto
}

TEST(SimdDifferential, ReportedIsaFollowsTheRequest) {
  ForceIsaGuard guard(nullptr);
  prim::ThreadPool pool(1);
  const EdgeList edges = gen::erdos_renyi(100, 400, 5);
  for (IsaLevel level : supported_levels()) {
    cpu::EngineOptions options;
    options.isa = request_for(level);
    const cpu::EngineResult result = cpu::count_engine(edges, pool, options);
    EXPECT_EQ(result.counting.isa, level);
  }
}

}  // namespace
}  // namespace trico
